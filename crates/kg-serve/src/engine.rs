//! The [`KgEngine`] facade: a query-batching frontend over the sharded
//! scoring engine.
//!
//! # Architecture
//!
//! Clients submit single link-prediction requests from any thread; the
//! engine accumulates them in a queue. A dispatcher thread drains the queue
//! in blocks of up to `block` same-direction queries and hands each block
//! to a **persistent worker crew** — the same
//! [`kg_eval::engine::plan_shards`] split the offline parallel ranker uses:
//! models with [`kg_models::BatchScorer::native_shard_scoring`] get the
//! entity table cut into even contiguous shards (one worker per shard,
//! row-restricted GEMM, each shard cache-resident in its worker), other
//! models get the block's query rows split full-width. Workers score
//! through [`kg_eval::engine::score_block_shard`] into reusable buffers
//! ([`kg_models::BatchScratch`] per worker, zero steady-state allocation),
//! the dispatcher stitches the shard columns back into full score rows and
//! answers each request with the shared per-query primitives
//! ([`kg_eval::ranking::filtered_rank`], [`kg_eval::ranking::top_k`]).
//!
//! # Bit-identity
//!
//! Shard blocks are bit-identical column (or row) slices of the full-table
//! per-query output — the [`kg_models::BatchScorer`] contract — so the
//! stitched row equals what [`kg_models::LinkPredictor::score_tails`] /
//! `score_heads` would have written, byte for byte, regardless of batch
//! composition, arrival order, thread count or block size. Ranks and top-k
//! are then computed by the same helpers a per-query caller would use, so
//! every response is **bit-identical to the sequential reference**
//! (`tests/serve_equivalence.rs` pins this for every shipped model family).
//!
//! # Failure semantics
//!
//! A panic inside a model's scoring override is caught by the worker,
//! poisons the engine, and propagates to every affected caller's `wait()` —
//! requests never hang, matching the ranking engine's barrier-poisoning
//! behaviour. Dropping the engine signals shutdown, fails still-pending
//! tickets, and joins the crew.

use crate::ticket::{RankTicket, Reply, ScoreTicket, TicketInner, TopKTicket};
use kg_core::{Dataset, EntityId, FilterIndex, RelationId};
use kg_eval::engine::{plan_shards, score_block_shard, Direction, WorkerShard, BLOCK};
use kg_eval::ranking::{filtered_rank, top_k};
use kg_models::{BatchScorer, BatchScratch};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The model type the engine serves: any [`BatchScorer`] behind a shared
/// pointer, so one set of trained parameters backs every worker thread.
type SharedModel = Arc<dyn BatchScorer + Send + Sync>;

/// One queued request.
#[derive(Debug, Clone)]
enum Request {
    /// Plausibility of a single triple (`score_triple` semantics).
    Score { h: usize, r: usize, t: usize },
    /// Filtered rank of `target` in the given direction's score row.
    Rank { dir: Direction, h: usize, r: usize, t: usize },
    /// The `k` best completions of the direction's query.
    TopK { dir: Direction, first: usize, second: usize, k: usize },
}

/// Which batch a request can ride in: triple scores batch together, row
/// queries batch per direction (one GEMM block each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Score,
    Row(Direction),
}

impl Request {
    fn class(&self) -> Class {
        match self {
            Request::Score { .. } => Class::Score,
            Request::Rank { dir, .. } | Request::TopK { dir, .. } => Class::Row(*dir),
        }
    }

    /// The `(entity, relation)` or `(relation, entity)` pair handed to the
    /// batch scorer for row requests.
    fn query(&self) -> (usize, usize) {
        match *self {
            Request::Rank { dir: Direction::Tails, h, r, .. } => (h, r),
            Request::Rank { dir: Direction::Heads, r, t, .. } => (r, t),
            Request::TopK { first, second, .. } => (first, second),
            Request::Score { .. } => unreachable!("score requests carry no row query"),
        }
    }
}

/// Queue shared between clients, dispatcher and `Drop`.
///
/// Requests live in one FIFO deque per [`Class`], tagged with a global
/// arrival sequence number: the dispatcher picks the class whose oldest
/// request arrived first, then cuts a block off that deque's front — O(1)
/// per request, no rescanning or rebuilding, whatever the class mix.
#[derive(Debug, Default)]
struct QueueState {
    score: VecDeque<(u64, Request, Arc<TicketInner>)>,
    tails: VecDeque<(u64, Request, Arc<TicketInner>)>,
    heads: VecDeque<(u64, Request, Arc<TicketInner>)>,
    next_seq: u64,
    shutdown: bool,
    /// Set once a worker (or the model itself) panics: every in-flight,
    /// pending and future request fails with this message.
    poisoned: Option<String>,
}

impl QueueState {
    fn queue_mut(&mut self, class: Class) -> &mut VecDeque<(u64, Request, Arc<TicketInner>)> {
        match class {
            Class::Score => &mut self.score,
            Class::Row(Direction::Tails) => &mut self.tails,
            Class::Row(Direction::Heads) => &mut self.heads,
        }
    }

    fn push(&mut self, request: Request, ticket: Arc<TicketInner>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue_mut(request.class()).push_back((seq, request, ticket));
    }

    fn is_empty(&self) -> bool {
        self.score.is_empty() && self.tails.is_empty() && self.heads.is_empty()
    }

    /// The class whose front request has waited longest (global FIFO
    /// across the per-class queues).
    fn oldest_class(&self) -> Option<Class> {
        [Class::Score, Class::Row(Direction::Tails), Class::Row(Direction::Heads)]
            .into_iter()
            .filter_map(|class| {
                let queue = match class {
                    Class::Score => &self.score,
                    Class::Row(Direction::Tails) => &self.tails,
                    Class::Row(Direction::Heads) => &self.heads,
                };
                queue.front().map(|(seq, _, _)| (*seq, class))
            })
            .min_by_key(|(seq, _)| *seq)
            .map(|(_, class)| class)
    }

    /// Fail every queued request with `why`, emptying the queues.
    fn drain_fail(&mut self, why: &str) {
        for queue in [&mut self.score, &mut self.tails, &mut self.heads] {
            for (_, _, ticket) in queue.drain(..) {
                ticket.fail(why);
            }
        }
    }
}

/// State shared by the engine handle, the dispatcher and submitters.
struct Shared {
    model: SharedModel,
    filter: FilterIndex,
    n_entities: usize,
    /// Relation vocabulary bound when known ([`KgEngine::builder`] takes it
    /// from the graph; [`KgEngineBuilder::relations`] sets it explicitly).
    /// `None` skips submit-time relation checks — a bad relation id then
    /// panics inside the model and poisons the engine.
    n_relations: Option<usize>,
    block: usize,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
}

/// One scoring assignment for a worker: the whole block's queries (the
/// worker slices its own rows for query-split shards) plus the reusable
/// output buffer it fills and sends back.
struct Job {
    dir: Direction,
    queries: Arc<Vec<(usize, usize)>>,
    out: Vec<f32>,
}

enum WorkerMsg {
    Job(Job),
    Shutdown,
}

/// A worker's answer: its filled buffer, or the panic it caught.
struct WorkerDone {
    worker: usize,
    out: Result<Vec<f32>, String>,
}

/// Render a caught panic payload for ticket failure messages.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Builder for [`KgEngine`] — see [`KgEngine::builder`].
///
/// ```
/// use kg_models::{blm::classics, BlmModel, Embeddings};
/// let mut rng = kg_linalg::SeededRng::new(2);
/// let model = BlmModel::new(classics::simple(), Embeddings::init(16, 2, 8, &mut rng));
/// let engine = kg_serve::KgEngine::with_filter(model, Default::default())
///     .threads(2)
///     .block(8)
///     .build();
/// assert_eq!(engine.n_entities(), 16);
/// ```
#[must_use = "the builder does nothing until build() is called"]
pub struct KgEngineBuilder {
    model: SharedModel,
    filter: FilterIndex,
    n_relations: Option<usize>,
    threads: usize,
    block: usize,
}

impl KgEngineBuilder {
    /// Size of the persistent worker crew (default 1). Models with native
    /// shard scoring get one even entity shard per worker (capped at the
    /// table size); others get the block's query rows split evenly.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(3);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).threads(4).build();
    /// assert_eq!(engine.threads(), 4);
    /// ```
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Maximum queries batched into one scoring block (default
    /// [`kg_eval::engine::BLOCK`] = 64, the same block size offline ranking
    /// uses). `block(1)` disables batching — every request is its own
    /// dispatch, the "one-at-a-time" baseline the microbenchmark compares
    /// against.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(4);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).block(1).build();
    /// assert_eq!(engine.block(), 1);
    /// ```
    pub fn block(mut self, queries: usize) -> Self {
        self.block = queries;
        self
    }

    /// Declare the relation vocabulary size so out-of-range relation ids
    /// are rejected at submission, on the caller's thread, instead of
    /// panicking a worker and poisoning the whole engine.
    /// [`KgEngine::builder`] sets this from the graph automatically;
    /// [`KgEngine::with_filter`] leaves it unset.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(8);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine =
    ///     kg_serve::KgEngine::with_filter(model, Default::default()).relations(2).build();
    /// let bad = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
    ///     engine.score(0, 9, 1)
    /// }));
    /// assert!(bad.is_err()); // rejected at submit — the engine stays up
    /// assert!(engine.score(0, 1, 1).is_finite());
    /// ```
    pub fn relations(mut self, n: usize) -> Self {
        self.n_relations = Some(n);
        self
    }

    /// Spawn the dispatcher and worker crew and return the ready engine.
    ///
    /// # Panics
    /// Panics if `threads` or `block` is zero.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(5);
    /// # let model = BlmModel::new(classics::distmult(), Embeddings::init(10, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let _ = engine.score(0, 0, 1);
    /// ```
    pub fn build(self) -> KgEngine {
        assert!(self.threads > 0, "KgEngine needs at least one worker thread");
        assert!(self.block > 0, "KgEngine needs a block size of at least one query");
        let shared = Arc::new(Shared {
            n_entities: self.model.n_entities(),
            model: self.model,
            filter: self.filter,
            n_relations: self.n_relations,
            block: self.block,
            queue: Mutex::new(QueueState::default()),
            queue_cv: Condvar::new(),
        });
        // The crew layout is fixed for the engine's lifetime: the same
        // shard plan the offline parallel ranker would pick.
        let plan = plan_shards(&shared.model, self.threads);
        let (done_tx, done_rx) = channel::<WorkerDone>();
        let mut senders = Vec::with_capacity(plan.len());
        let mut workers = Vec::with_capacity(plan.len());
        for (idx, shard) in plan.iter().cloned().enumerate() {
            let (job_tx, job_rx) = channel::<WorkerMsg>();
            senders.push(job_tx);
            let model = Arc::clone(&shared.model);
            let done = done_tx.clone();
            let n_entities = shared.n_entities;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kg-serve-worker-{idx}"))
                    .spawn(move || worker_loop(model, shard, n_entities, idx, job_rx, done))
                    .expect("spawn kg-serve worker"),
            );
        }
        drop(done_tx);
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("kg-serve-dispatcher".to_string())
            .spawn(move || dispatcher_thread(dispatcher_shared, plan, senders, done_rx))
            .expect("spawn kg-serve dispatcher");
        KgEngine { shared, dispatcher: Some(dispatcher), workers }
    }
}

/// An online link-prediction engine: request-level scoring, ranking and
/// top-k over a shared model, with single queries transparently batched
/// into GEMM blocks and sharded across a persistent worker crew.
///
/// Construct via [`KgEngine::builder`] (filtered ranking against a
/// [`Dataset`]'s known positives) or [`KgEngine::with_filter`] (explicit —
/// possibly empty — [`FilterIndex`]). All request methods are `&self` and
/// thread-safe: share the engine behind an [`Arc`] (or scoped-thread
/// reference) and submit from as many client threads as you like.
///
/// ```
/// use kg_core::{Dataset, Triple};
/// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
///
/// let mut rng = kg_linalg::SeededRng::new(11);
/// let model = BlmModel::new(classics::complex(), Embeddings::init(30, 2, 8, &mut rng));
/// let graph = Dataset::with_vocab("toy", 30, 2, vec![Triple::new(0, 0, 1)], vec![], vec![]);
///
/// // The engine answers exactly what the per-query reference would.
/// let mut row = vec![0.0f32; 30];
/// model.score_tails(4, 1, &mut row);
/// let reference = kg_eval::top_k(&row, 5);
///
/// let engine = kg_serve::KgEngine::builder(model, &graph).threads(2).block(16).build();
/// assert_eq!(engine.top_k_tails(4, 1, 5), reference);
/// ```
pub struct KgEngine {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl KgEngine {
    /// Start building an engine that serves `model` with filtered ranking
    /// against every known positive of `graph` (train + valid + test — the
    /// standard filtered-evaluation convention).
    ///
    /// `model` is anything implementing [`BatchScorer`] — a concrete model,
    /// or an already-shared `Arc<dyn BatchScorer + Send + Sync>` (the
    /// pointer forwarding impls in `kg-models` keep its GEMM overrides).
    ///
    /// ```
    /// use kg_core::{Dataset, Triple};
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(12);
    /// let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let graph = Dataset::with_vocab("toy", 20, 2, vec![Triple::new(0, 0, 1)], vec![], vec![]);
    /// let engine = kg_serve::KgEngine::builder(model, &graph).build();
    /// // (0, 0, 1) is a known positive, so it is excluded when ranking
    /// // other tails for (0, 0, ·).
    /// assert!(engine.rank_tail(0, 0, 2) >= 1.0);
    /// ```
    pub fn builder<M: BatchScorer + Send + Sync + 'static>(
        model: M,
        graph: &Dataset,
    ) -> KgEngineBuilder {
        KgEngine::with_filter(model, FilterIndex::from_dataset(graph)).relations(graph.n_relations)
    }

    /// Start building an engine with an explicit filter index (use
    /// `FilterIndex::default()` for unfiltered ranking).
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(13);
    /// let model = BlmModel::new(classics::analogy(), Embeddings::init(20, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert!(engine.rank_tail(0, 0, 3) >= 1.0);
    /// ```
    pub fn with_filter<M: BatchScorer + Send + Sync + 'static>(
        model: M,
        filter: FilterIndex,
    ) -> KgEngineBuilder {
        KgEngineBuilder {
            model: Arc::new(model),
            filter,
            n_relations: None,
            threads: 1,
            block: BLOCK,
        }
    }

    /// Number of entities the served model ranks over.
    ///
    /// ```
    /// # use kg_models::{blm::classics, BlmModel, Embeddings};
    /// # let mut rng = kg_linalg::SeededRng::new(14);
    /// # let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.n_entities(), 20);
    /// ```
    pub fn n_entities(&self) -> usize {
        self.shared.n_entities
    }

    /// Size of the worker crew this engine was built with.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Maximum queries per scoring block this engine was built with.
    pub fn block(&self) -> usize {
        self.shared.block
    }

    /// Plausibility score of one triple — bit-identical to
    /// [`kg_models::LinkPredictor::score_triple`] on the served model.
    /// Blocking shorthand for [`KgEngine::submit_score`]` + wait`.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(15);
    /// let model = BlmModel::new(classics::distmult(), Embeddings::init(20, 2, 8, &mut rng));
    /// let reference = model.score_triple(2, 1, 9);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.score(2, 1, 9), reference);
    /// ```
    pub fn score(&self, h: usize, r: usize, t: usize) -> f32 {
        self.submit_score(h, r, t).wait()
    }

    /// Filtered rank of tail `t` among all completions of `(h, r, ·)` —
    /// ties count half, known positives other than `t` are excluded.
    /// Bit-identical to scoring the row with
    /// [`kg_models::LinkPredictor::score_tails`] and calling
    /// [`kg_eval::ranking::filtered_rank`].
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(16);
    /// let model = BlmModel::new(classics::complex(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_tails(3, 0, &mut row);
    /// let reference = kg_eval::filtered_rank(&row, 8, &[]);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.rank_tail(3, 0, 8), reference);
    /// ```
    pub fn rank_tail(&self, h: usize, r: usize, t: usize) -> f64 {
        self.submit_rank_tail(h, r, t).wait()
    }

    /// Filtered rank of head `h` among all completions of `(·, r, t)` — the
    /// head-direction counterpart of [`KgEngine::rank_tail`].
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(17);
    /// let model = BlmModel::new(classics::simple(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_heads(0, 9, &mut row);
    /// let reference = kg_eval::filtered_rank(&row, 4, &[]);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.rank_head(4, 0, 9), reference);
    /// ```
    pub fn rank_head(&self, h: usize, r: usize, t: usize) -> f64 {
        self.submit_rank_head(h, r, t).wait()
    }

    /// The `k` best tail completions of `(h, r, ·)` as `(entity, score)`
    /// pairs, deterministically ordered (score descending, ties by entity
    /// id ascending — [`kg_eval::ranking::top_k`] on the unfiltered row).
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(18);
    /// let model = BlmModel::new(classics::analogy(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_tails(1, 1, &mut row);
    /// let reference = kg_eval::top_k(&row, 4);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.top_k_tails(1, 1, 4), reference);
    /// ```
    pub fn top_k_tails(&self, h: usize, r: usize, k: usize) -> Vec<(usize, f32)> {
        self.submit_top_k_tails(h, r, k).wait()
    }

    /// The `k` best head completions of `(·, r, t)` — the head-direction
    /// counterpart of [`KgEngine::top_k_tails`].
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings, LinkPredictor};
    /// let mut rng = kg_linalg::SeededRng::new(19);
    /// let model = BlmModel::new(classics::distmult(), Embeddings::init(20, 2, 8, &mut rng));
    /// let mut row = vec![0.0f32; 20];
    /// model.score_heads(1, 6, &mut row);
    /// let reference = kg_eval::top_k(&row, 2);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// assert_eq!(engine.top_k_heads(1, 6, 2), reference);
    /// ```
    pub fn top_k_heads(&self, r: usize, t: usize, k: usize) -> Vec<(usize, f32)> {
        self.submit_top_k_heads(r, t, k).wait()
    }

    /// Enqueue a triple-score request without blocking; see
    /// [`KgEngine::score`] and [`ScoreTicket`].
    pub fn submit_score(&self, h: usize, r: usize, t: usize) -> ScoreTicket {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        ScoreTicket { inner: self.enqueue(Request::Score { h, r, t }) }
    }

    /// Enqueue a tail-rank request without blocking; see
    /// [`KgEngine::rank_tail`] and [`RankTicket`].
    pub fn submit_rank_tail(&self, h: usize, r: usize, t: usize) -> RankTicket {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        RankTicket { inner: self.enqueue(Request::Rank { dir: Direction::Tails, h, r, t }) }
    }

    /// Enqueue a head-rank request without blocking; see
    /// [`KgEngine::rank_head`] and [`RankTicket`].
    pub fn submit_rank_head(&self, h: usize, r: usize, t: usize) -> RankTicket {
        self.check_entity(h);
        self.check_entity(t);
        self.check_relation(r);
        RankTicket { inner: self.enqueue(Request::Rank { dir: Direction::Heads, h, r, t }) }
    }

    /// Enqueue a tail top-k request without blocking; see
    /// [`KgEngine::top_k_tails`] and [`TopKTicket`].
    pub fn submit_top_k_tails(&self, h: usize, r: usize, k: usize) -> TopKTicket {
        self.check_entity(h);
        self.check_relation(r);
        TopKTicket {
            inner: self.enqueue(Request::TopK { dir: Direction::Tails, first: h, second: r, k }),
        }
    }

    /// Enqueue a head top-k request without blocking; see
    /// [`KgEngine::top_k_heads`] and [`TopKTicket`].
    pub fn submit_top_k_heads(&self, r: usize, t: usize, k: usize) -> TopKTicket {
        self.check_entity(t);
        self.check_relation(r);
        TopKTicket {
            inner: self.enqueue(Request::TopK { dir: Direction::Heads, first: r, second: t, k }),
        }
    }

    fn check_entity(&self, e: usize) {
        assert!(
            e < self.shared.n_entities,
            "entity id {e} out of range for a {}-entity model",
            self.shared.n_entities
        );
    }

    /// Reject an out-of-range relation id on the caller's thread when the
    /// vocabulary bound is known — one malformed request must not panic a
    /// worker and poison the engine for every other client.
    fn check_relation(&self, r: usize) {
        if let Some(n) = self.shared.n_relations {
            assert!(r < n, "relation id {r} out of range for a {n}-relation graph");
        }
    }

    /// Push a request and wake the dispatcher; on a poisoned or shut-down
    /// engine the ticket is failed immediately instead (so `wait()`
    /// propagates the failure rather than hanging).
    fn enqueue(&self, request: Request) -> Arc<TicketInner> {
        let ticket = TicketInner::new();
        let mut q = self.shared.queue.lock().expect("serve queue lock");
        if let Some(why) = &q.poisoned {
            ticket.fail(why);
        } else if q.shutdown {
            ticket.fail("engine shut down with the query still pending");
        } else {
            q.push(request, Arc::clone(&ticket));
            self.shared.queue_cv.notify_one();
        }
        ticket
    }
}

impl Drop for KgEngine {
    /// Signal shutdown, fail still-pending requests, and join the
    /// dispatcher and every worker — never blocks on queued work and never
    /// leaks a thread, even after a worker panic poisoned the engine.
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("serve queue lock");
            q.shutdown = true;
            self.shared.queue_cv.notify_all();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            // The dispatcher fails leftover tickets and closes the job
            // channels, which in turn stops the workers.
            let _ = dispatcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Worker-crew thread: score whatever [`Job`]s arrive against this
/// worker's fixed shard, catching panics so a failing model override
/// reaches clients as an error instead of a deadlock.
fn worker_loop(
    model: SharedModel,
    shard: WorkerShard,
    n_entities: usize,
    idx: usize,
    jobs: Receiver<WorkerMsg>,
    done: Sender<WorkerDone>,
) {
    let mut scratch = BatchScratch::new();
    while let Ok(WorkerMsg::Job(job)) = jobs.recv() {
        let mut out = job.out;
        let scored = catch_unwind(AssertUnwindSafe(|| {
            let rows = shard.rows(job.queries.len());
            let width = shard.width(n_entities);
            let queries = &job.queries[rows];
            out.resize(queries.len() * width, 0.0);
            score_block_shard(&model, job.dir, queries, &shard, &mut out, &mut scratch);
        }));
        let result = match scored {
            Ok(()) => Ok(out),
            Err(payload) => Err(panic_message(payload)),
        };
        if done.send(WorkerDone { worker: idx, out: result }).is_err() {
            return; // dispatcher gone: engine is shutting down
        }
    }
}

/// Dispatcher thread: drain the queue in same-class blocks, fan each block
/// out to the crew, stitch the shard results and answer the tickets. Wraps
/// the loop in `catch_unwind` so an unexpected dispatcher panic still fails
/// outstanding tickets instead of stranding their clients.
fn dispatcher_thread(
    shared: Arc<Shared>,
    plan: Vec<WorkerShard>,
    senders: Vec<Sender<WorkerMsg>>,
    done: Receiver<WorkerDone>,
) {
    let crashed =
        catch_unwind(AssertUnwindSafe(|| dispatcher_loop(&shared, &plan, &senders, &done)));
    let why = match crashed {
        Ok(()) => return, // clean shutdown: tickets already settled
        Err(payload) => format!("dispatcher panicked: {}", panic_message(payload)),
    };
    let mut q = shared.queue.lock().expect("serve queue lock");
    q.poisoned.get_or_insert_with(|| why.clone());
    q.drain_fail(&why);
    // Dropping `senders` (when this thread exits) closes the job channels
    // and the workers drain out on their own.
}

fn dispatcher_loop(
    shared: &Shared,
    plan: &[WorkerShard],
    senders: &[Sender<WorkerMsg>],
    done: &Receiver<WorkerDone>,
) {
    let n_workers = plan.len();
    let mut batch: Vec<(Request, Arc<TicketInner>)> = Vec::with_capacity(shared.block);
    // Reusable buffers: one compact block per worker (round-tripped through
    // the job channel) and the stitched full-width block.
    let mut pool: Vec<Option<Vec<f32>>> = (0..n_workers).map(|_| Some(Vec::new())).collect();
    let mut full: Vec<f32> = Vec::new();
    loop {
        // Phase 1: wait for work (or shutdown), then cut one batch off the
        // front of the class queue whose head request is oldest — FIFO
        // within each class, oldest class first, O(block) per cut. Arrival
        // order decides which requests share a block but never their
        // answers.
        let class = {
            let mut q = shared.queue.lock().expect("serve queue lock");
            while q.is_empty() && !q.shutdown {
                q = shared.queue_cv.wait(q).expect("serve queue wait");
            }
            if q.shutdown {
                q.drain_fail("engine shut down with the query still pending");
                for sender in senders {
                    let _ = sender.send(WorkerMsg::Shutdown);
                }
                return;
            }
            let class = q.oldest_class().expect("non-empty queue has an oldest class");
            batch.clear();
            let queue = q.queue_mut(class);
            while batch.len() < shared.block {
                match queue.pop_front() {
                    Some((_, request, ticket)) => batch.push((request, ticket)),
                    None => break,
                }
            }
            class
        };

        match class {
            // Triple scores are O(dim) each — no row to shard, answer
            // directly with the per-query reference call.
            Class::Score => {
                let mut failed: Option<String> = None;
                for (request, ticket) in batch.drain(..) {
                    if let Some(why) = &failed {
                        ticket.fail(why);
                        continue;
                    }
                    let Request::Score { h, r, t } = request else {
                        unreachable!("score batch holds score requests")
                    };
                    let model = &shared.model;
                    match catch_unwind(AssertUnwindSafe(|| model.score_triple(h, r, t))) {
                        Ok(score) => ticket.fulfill(Reply::Score(score)),
                        Err(payload) => {
                            let why = format!("model panicked: {}", panic_message(payload));
                            ticket.fail(&why);
                            poison(shared, &why);
                            failed = Some(why);
                        }
                    }
                }
            }
            // Row queries: one block, the whole crew.
            Class::Row(dir) => {
                let queries: Arc<Vec<(usize, usize)>> =
                    Arc::new(batch.iter().map(|(request, _)| request.query()).collect());
                let mut failure: Option<String> = None;
                let mut dispatched = 0;
                for (w, sender) in senders.iter().enumerate() {
                    let job = Job {
                        dir,
                        queries: Arc::clone(&queries),
                        out: pool[w].take().expect("worker buffer in pool"),
                    };
                    if sender.send(WorkerMsg::Job(job)).is_ok() {
                        dispatched += 1;
                    } else {
                        // A worker can only be gone if the crew is already
                        // tearing down; don't wait for its result.
                        failure.get_or_insert("worker crew hung up".to_string());
                        pool[w] = Some(Vec::new());
                    }
                }
                for _ in 0..dispatched {
                    match done.recv() {
                        Ok(WorkerDone { worker, out: Ok(buf) }) => pool[worker] = Some(buf),
                        Ok(WorkerDone { worker, out: Err(why) }) => {
                            let why = format!("worker panicked: {why}");
                            failure.get_or_insert(why);
                            pool[worker] = Some(Vec::new());
                        }
                        Err(_) => {
                            failure.get_or_insert("worker crew hung up".to_string());
                            break;
                        }
                    }
                }
                if let Some(why) = failure {
                    for (_, ticket) in batch.drain(..) {
                        ticket.fail(&why);
                    }
                    poison(shared, &why);
                    continue;
                }
                stitch(plan, &pool, queries.len(), shared.n_entities, &mut full);
                for (i, (request, ticket)) in batch.drain(..).enumerate() {
                    let row = &full[i * shared.n_entities..(i + 1) * shared.n_entities];
                    ticket.fulfill(answer(shared, &request, row));
                }
            }
        }
    }
}

/// Copy each worker's compact shard block back into full-width score rows.
/// Entity shards are column ranges, query shards are row ranges; both are
/// bit-identical slices of the reference row, so `full` ends up exactly as
/// the per-query path would have written it.
fn stitch(
    plan: &[WorkerShard],
    pool: &[Option<Vec<f32>>],
    block_len: usize,
    n_entities: usize,
    full: &mut Vec<f32>,
) {
    full.resize(block_len * n_entities, 0.0);
    for (w, shard) in plan.iter().enumerate() {
        let buf = pool[w].as_ref().expect("worker buffer returned");
        match shard {
            WorkerShard::Entities(range) => {
                let width = range.len();
                for q in 0..block_len {
                    full[q * n_entities + range.start..q * n_entities + range.end]
                        .copy_from_slice(&buf[q * width..(q + 1) * width]);
                }
            }
            WorkerShard::Queries { .. } => {
                let rows = shard.rows(block_len);
                full[rows.start * n_entities..rows.end * n_entities]
                    .copy_from_slice(&buf[..rows.len() * n_entities]);
            }
        }
    }
}

/// Answer one row request from its stitched full-width score row with the
/// shared per-query primitives.
fn answer(shared: &Shared, request: &Request, row: &[f32]) -> Reply {
    match *request {
        Request::Rank { dir: Direction::Tails, h, r, t } => {
            let known = shared.filter.tails(EntityId(h as u32), RelationId(r as u32));
            Reply::Rank(filtered_rank(row, t, known))
        }
        Request::Rank { dir: Direction::Heads, h, r, t } => {
            let known = shared.filter.heads(RelationId(r as u32), EntityId(t as u32));
            Reply::Rank(filtered_rank(row, h, known))
        }
        Request::TopK { k, .. } => Reply::TopK(top_k(row, k)),
        Request::Score { .. } => unreachable!("score requests never reach the row path"),
    }
}

/// Permanently fail the engine: every pending and future request gets
/// `why`. Mirrors the offline engine's barrier poisoning — after a panic
/// nothing hangs, everything reports the original failure.
fn poison(shared: &Shared, why: &str) {
    let mut q = shared.queue.lock().expect("serve queue lock");
    q.poisoned.get_or_insert_with(|| why.to_string());
    q.drain_fail(why);
}

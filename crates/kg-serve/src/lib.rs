//! `kg-serve` — online link-prediction serving over the sharded scoring
//! engine, behind a latency-aware batching dispatcher.
//!
//! The offline pipeline (training, evaluation, AutoSF search) reaches the
//! batched GEMM/shard seam through bulk entry points; this crate is the
//! **request-level** surface: a [`KgEngine`] accepts single queries —
//! `score(h, r, t)`, `rank_tail` / `rank_head`, `top_k_tails` /
//! `top_k_heads` — from any number of client threads, transparently
//! accumulates them into the same 64-row blocks the offline engine uses,
//! and dispatches each block across a persistent worker crew via
//! [`kg_models::BatchScorer::score_tails_shard`] /
//! [`kg_models::BatchScorer::score_heads_shard`]. Batching buys back the
//! GEMM and cache locality the per-query path gives up, while every
//! response stays **bit-identical** to the per-query
//! [`kg_models::LinkPredictor`] reference — whatever the batch composition,
//! arrival order, thread count or scheduler configuration.
//!
//! # Scheduling policy
//!
//! The dispatcher serves requests **FIFO within each class** (triple
//! scores, tail row queries, head row queries), picking the **class whose
//! oldest request has waited longest** — so no class starves, and arrival
//! order decides which requests share a GEMM block but never their
//! answers. Two latency-aware knobs refine the policy:
//!
//! * **Linger** ([`KgEngineBuilder::linger`], default zero): an
//!   under-filled row block may wait a bounded time — anchored to its
//!   oldest request's arrival — for co-batchable queries, trading
//!   microseconds of latency for full-block GEMM locality.
//! * **Split-crew dual-direction draining**
//!   ([`KgEngineBuilder::split_crew`], default on): when both directions
//!   are queued, the crew splits into two sub-crews that drain one tail
//!   and one head block concurrently, so a deep backlog in one direction
//!   cannot head-of-line-block the other.
//!
//! Block dispatch is **pipelined**: the dispatcher cuts and hands the
//! crew the next block *before* converting and answering the previous
//! one (double-buffered per-lane result buffers), so the crew scores
//! block N+1 while block N's answers are delivered — under sustained
//! load the workers never idle on the answer path.
//!
//! [`KgEngine::stats`] returns a lock-free [`EngineStats`] snapshot
//! (queries served, blocks cut, mean block fill, split blocks, queue
//! depths, shed/expired/fairness counters, per-class submit→settle
//! [`LatencyHistogram`]s, plus pipeline occupancy: `blocks_overlapped`,
//! `lead_idle`, `crew_idle`) for operators and benchmarks;
//! [`KgEngine::stats_probe`] detaches a reader that outlives the engine.
//!
//! # Overload behaviour
//!
//! The engine bounds both queue memory and queueing delay instead of
//! degrading without limit:
//!
//! * **Bounded admission.** Every class queue has a cap
//!   ([`KgEngineBuilder::max_queued`], default
//!   [`KgEngineBuilder::DEFAULT_MAX_QUEUED`]). A `submit_*` call against a
//!   full queue returns [`SubmitError::Shed`] on the caller's thread —
//!   nothing is enqueued, no ticket exists. The error's `retry_after` is a
//!   backoff *hint*: the engine's estimate (from the observed mean block
//!   service time and the queue depth) of how long the backlog ahead of a
//!   new request needs to drain. Resubmitting after `retry_after` may
//!   still shed — other clients race for the freed slots — but honouring
//!   it keeps rejected clients from hot-looping on a saturated engine.
//! * **Deadline shedding.** With [`KgEngineBuilder::deadline`] set, a
//!   request that has already waited longer than the deadline when the
//!   dispatcher cuts its block is dropped *before* scoring and its ticket
//!   fails with [`ServeError::Expired`] (`wait_result` returns it;
//!   `wait()` panics). Stale backlog becomes fast typed failures, so
//!   admitted-and-answered latency stays bounded at roughly the deadline
//!   plus one block's service time even at sustained overload.
//! * **Fair dequeue.** Submissions through [`KgEngine::client`] get
//!   per-client FIFO lanes; block cuts round-robin across lanes
//!   ([`KgEngineBuilder::fair_dequeue`], default on), so one flooding
//!   client cannot monopolise a full queue's blocks.
//!
//! Every admitted request settles exactly once — answered, expired, or
//! failed — and each settle records into its class's latency histogram:
//! `queries_served + queries_failed + queries_expired` equals the number
//! of admitted requests, and the histograms' counts match. Shed requests
//! were never admitted and appear only in `queries_shed`. Admission sits
//! entirely above block cutting, so answered responses remain
//! bit-identical to the per-query reference whatever the caps, deadline
//! or fairness configuration.
//!
//! Malformed requests are rejected at submit time on the caller's thread —
//! entity ids against the model's table, relation ids against the bound
//! the engine learns from the graph ([`KgEngine::builder`]) or from the
//! model itself ([`kg_models::LinkPredictor::n_relations`]); a panic
//! inside a model's scoring code fails only the offending request (the
//! block is rescored per query), never the engine.
//!
//! ```
//! use kg_core::{Dataset, Triple};
//! use kg_models::{blm::classics, BlmModel, Embeddings};
//! use kg_serve::KgEngine;
//!
//! // A (toy) trained model plus the graph whose positives filter ranking.
//! let mut rng = kg_linalg::SeededRng::new(42);
//! let model = BlmModel::new(classics::simple(), Embeddings::init(50, 3, 16, &mut rng));
//! let graph = Dataset::with_vocab("toy", 50, 3, vec![Triple::new(0, 0, 1)], vec![], vec![]);
//!
//! let engine = KgEngine::builder(model, &graph).threads(2).block(64).build();
//! let score = engine.score(0, 0, 1);
//! let rank = engine.rank_tail(0, 0, 1);
//! let best = engine.top_k_tails(0, 0, 5);
//! assert!(score.is_finite() && rank >= 1.0 && best.len() == 5);
//! assert_eq!(engine.stats().queries_served, 3);
//! ```

mod admission;
mod engine;
mod ticket;

pub use admission::{LatencyHistogram, RequestClass, ServeError, SubmitError, LATENCY_BUCKETS};
pub use engine::{ClientHandle, EngineStats, KgEngine, KgEngineBuilder, StatsProbe};
pub use ticket::{RankTicket, ScoreTicket, TopKTicket};

//! `kg-serve` — online link-prediction serving over the sharded scoring
//! engine.
//!
//! The offline pipeline (training, evaluation, AutoSF search) reaches the
//! batched GEMM/shard seam through bulk entry points; this crate is the
//! **request-level** surface: a [`KgEngine`] accepts single queries —
//! `score(h, r, t)`, `rank_tail` / `rank_head`, `top_k_tails` /
//! `top_k_heads` — from any number of client threads, transparently
//! accumulates them into the same 64-row blocks the offline engine uses,
//! and dispatches each block across a persistent worker crew via
//! [`kg_models::BatchScorer::score_tails_shard`] /
//! [`kg_models::BatchScorer::score_heads_shard`]. Batching buys back the
//! GEMM and cache locality the per-query path gives up, while every
//! response stays **bit-identical** to the per-query
//! [`kg_models::LinkPredictor`] reference — whatever the batch composition,
//! arrival order or thread count.
//!
//! ```
//! use kg_core::{Dataset, Triple};
//! use kg_models::{blm::classics, BlmModel, Embeddings};
//! use kg_serve::KgEngine;
//!
//! // A (toy) trained model plus the graph whose positives filter ranking.
//! let mut rng = kg_linalg::SeededRng::new(42);
//! let model = BlmModel::new(classics::simple(), Embeddings::init(50, 3, 16, &mut rng));
//! let graph = Dataset::with_vocab("toy", 50, 3, vec![Triple::new(0, 0, 1)], vec![], vec![]);
//!
//! let engine = KgEngine::builder(model, &graph).threads(2).block(64).build();
//! let score = engine.score(0, 0, 1);
//! let rank = engine.rank_tail(0, 0, 1);
//! let best = engine.top_k_tails(0, 0, 5);
//! assert!(score.is_finite() && rank >= 1.0 && best.len() == 5);
//! ```

mod engine;
mod ticket;

pub use engine::{KgEngine, KgEngineBuilder};
pub use ticket::{RankTicket, ScoreTicket, TopKTicket};

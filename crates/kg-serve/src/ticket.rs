//! Response tickets: the asynchronous half of the serving API.
//!
//! Every `submit_*` call on [`crate::KgEngine`] enqueues the request and
//! returns a ticket immediately; the batching queue answers it once the
//! request's block has been scored. Waiting on a ticket blocks the calling
//! thread only — other clients keep submitting, which is exactly what lets
//! the engine accumulate single queries into full GEMM blocks.
//!
//! A ticket can settle two ways: answered, or failed with a typed
//! [`ServeError`] (the model panicked on that request, the request expired
//! against the engine's deadline, or the engine shut down / was poisoned
//! with it pending). `wait()` panics on failure — the ergonomic choice for
//! the blocking convenience wrappers — while `wait_result()` returns the
//! error for callers that handle overload programmatically.

use crate::admission::ServeError;
use std::sync::{Arc, Condvar, Mutex};

/// A fulfilled request's payload.
#[derive(Debug, Clone)]
pub(crate) enum Reply {
    Score(f32),
    Rank(f64),
    TopK(Vec<(usize, f32)>),
}

/// Lifecycle of one request inside the engine.
#[derive(Debug)]
enum State {
    /// Queued or in flight.
    Pending,
    /// Answered; the payload waits for `wait()`.
    Ready(Reply),
    /// The engine could not answer — deadline expiry, a model panic, or
    /// shutdown/poisoning. `wait()` propagates this as a panic (mirroring
    /// the ranking engine's barrier-poisoning behaviour); `wait_result()`
    /// returns it.
    Failed(ServeError),
}

/// Shared slot between one ticket and the engine.
#[derive(Debug)]
pub(crate) struct TicketInner {
    state: Mutex<State>,
    cv: Condvar,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketInner { state: Mutex::new(State::Pending), cv: Condvar::new() })
    }

    /// Answer the request (engine side).
    pub(crate) fn fulfill(&self, reply: Reply) {
        let mut state = self.state.lock().expect("ticket lock");
        *state = State::Ready(reply);
        self.cv.notify_all();
    }

    /// Mark the request unanswerable (engine side); a ticket already
    /// answered keeps its answer.
    pub(crate) fn fail(&self, why: ServeError) {
        let mut state = self.state.lock().expect("ticket lock");
        if matches!(*state, State::Pending) {
            *state = State::Failed(why);
            self.cv.notify_all();
        }
    }

    /// `true` once the engine has answered or failed this request.
    pub(crate) fn is_settled(&self) -> bool {
        !matches!(*self.state.lock().expect("ticket lock"), State::Pending)
    }

    /// Block until settled.
    fn wait_reply(&self) -> Result<Reply, ServeError> {
        let mut state = self.state.lock().expect("ticket lock");
        loop {
            match &*state {
                State::Pending => state = self.cv.wait(state).expect("ticket wait"),
                State::Ready(reply) => return Ok(reply.clone()),
                State::Failed(why) => return Err(why.clone()),
            }
        }
    }
}

macro_rules! ticket_type {
    ($(#[$doc:meta])* $name:ident, $out:ty, $variant:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        #[must_use = "a ticket does nothing until waited on"]
        pub struct $name {
            pub(crate) inner: Arc<TicketInner>,
        }

        impl $name {
            /// Block until the engine answers this request and return the
            /// result.
            ///
            /// # Panics
            /// Panics if the request cannot be answered: a scoring worker
            /// panicked (the panic propagates here instead of deadlocking
            /// the crew), the request expired against the engine's
            /// deadline, or the engine was dropped with this request still
            /// pending. Use [`Self::wait_result`] to handle those as
            /// values.
            pub fn wait(self) -> $out {
                match self.inner.wait_reply() {
                    Ok(Reply::$variant(v)) => v,
                    Ok(other) => unreachable!("ticket answered with mismatched reply {other:?}"),
                    Err(why) => panic!("kg-serve request failed: {why}"),
                }
            }

            /// Block until the engine settles this request: the answer, or
            /// the typed [`ServeError`] it failed with — deadline expiry
            /// ([`ServeError::Expired`]) being the one clients under
            /// overload are expected to see and handle.
            pub fn wait_result(self) -> Result<$out, ServeError> {
                match self.inner.wait_reply()? {
                    Reply::$variant(v) => Ok(v),
                    other => unreachable!("ticket answered with mismatched reply {other:?}"),
                }
            }

            /// `true` once the engine has settled this request (answered
            /// it, or failed it) — a non-blocking probe: once it returns
            /// `true`, `wait()` returns (or propagates the failure)
            /// without blocking. Useful for polling many outstanding
            /// tickets without committing a thread to each.
            pub fn is_settled(&self) -> bool {
                self.inner.is_settled()
            }
        }
    };
}

ticket_type!(
    /// Pending answer to a [`crate::KgEngine::submit_score`] request.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(5);
    /// let model = BlmModel::new(classics::distmult(), Embeddings::init(12, 2, 8, &mut rng));
    /// let reference = kg_models::LinkPredictor::score_triple(&model, 3, 1, 7);
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let ticket = engine.submit_score(3, 1, 7).expect("admitted");
    /// assert_eq!(ticket.wait(), reference);
    /// ```
    ScoreTicket,
    f32,
    Score
);

ticket_type!(
    /// Pending answer to a [`crate::KgEngine::submit_rank_tail`] /
    /// [`crate::KgEngine::submit_rank_head`] request.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(6);
    /// let model = BlmModel::new(classics::complex(), Embeddings::init(12, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// // Submit first, wait later: both directions rank concurrently.
    /// let tail = engine.submit_rank_tail(0, 1, 5).expect("admitted");
    /// let head = engine.submit_rank_head(0, 1, 5).expect("admitted");
    /// assert!(tail.wait() >= 1.0 && head.wait() >= 1.0);
    /// ```
    RankTicket,
    f64,
    Rank
);

ticket_type!(
    /// Pending answer to a [`crate::KgEngine::submit_top_k_tails`] /
    /// [`crate::KgEngine::submit_top_k_heads`] request.
    ///
    /// ```
    /// use kg_models::{blm::classics, BlmModel, Embeddings};
    /// let mut rng = kg_linalg::SeededRng::new(7);
    /// let model = BlmModel::new(classics::simple(), Embeddings::init(12, 2, 8, &mut rng));
    /// let engine = kg_serve::KgEngine::with_filter(model, Default::default()).build();
    /// let ticket = engine.submit_top_k_tails(2, 0, 3).expect("admitted");
    /// assert_eq!(ticket.wait_result().expect("answered").len(), 3);
    /// ```
    TopKTicket,
    Vec<(usize, f32)>,
    TopK
);

//! Admission-control guarantees of [`KgEngine`]: queue caps shed at the
//! door with a typed error and a usable backoff hint, deadlines expire
//! stale requests before the crew scores them, fair dequeue round-robins
//! block cuts across client lanes, and the overload counters + latency
//! histograms account for every request exactly once.

use kg_serve::{KgEngine, RequestClass, ServeError, SubmitError};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 12;

/// A model slow enough (~20 ms per scored row) that queued requests
/// reliably outwait tiny deadlines and queues reliably back up behind
/// tiny caps.
struct Slow {
    scored: Arc<AtomicUsize>,
}

impl kg_models::LinkPredictor for Slow {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.0
    }
    fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(20));
        self.scored.fetch_add(1, Relaxed);
        out.fill(1.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        self.score_tails(0, 0, out);
    }
}

impl kg_models::BatchScorer for Slow {}

fn slow_engine() -> (KgEngine, Arc<AtomicUsize>) {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored: Arc::clone(&scored) }, Default::default());
    (engine.threads(1).block(1).split_crew(false).build(), scored)
}

/// A full class queue sheds at the door: the submit call itself returns
/// `SubmitError::Shed` with the observed depth and a non-degenerate
/// retry hint, nothing is enqueued, and other classes stay open.
#[test]
fn full_queue_sheds_with_typed_error_and_backoff_hint() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default())
        .threads(1)
        .block(1)
        .split_crew(false)
        .max_queued(RequestClass::Tails, 2)
        .build();
    // Saturate: one query occupies the crew (~20 ms), then fill the
    // 2-deep tail queue behind it.
    let mut tickets = vec![engine.submit_rank_tail(0, 0, 1).expect("first admitted")];
    let mut shed = None;
    for i in 0..8 {
        match engine.submit_rank_tail(i % N, 0, 1) {
            Ok(t) => tickets.push(t),
            Err(e) => {
                shed = Some(e);
                break;
            }
        }
    }
    let SubmitError::Shed { class, depth, retry_after } = shed.expect("cap 2 must shed a burst");
    assert_eq!(class, RequestClass::Tails);
    assert!(depth >= 2, "shed below the cap: depth {depth}");
    assert!(
        retry_after >= Duration::from_micros(10) && retry_after <= Duration::from_secs(1),
        "retry hint outside its clamp: {retry_after:?}"
    );
    // The shed request never entered the engine; the head queue is
    // unaffected by the full tail queue.
    let head = engine.submit_rank_head(1, 0, 2).expect("other classes stay open");
    for t in tickets {
        assert!(t.wait() >= 1.0);
    }
    assert!(head.wait() >= 1.0);
    let stats = engine.stats();
    assert!(stats.queries_shed >= 1);
    assert_eq!(stats.depth_tails, 0, "shed submissions must not leave depth behind");
    // Shed requests are not settled requests: they appear in no other
    // counter and no histogram.
    assert_eq!(
        stats.queries_served + stats.queries_failed + stats.queries_expired,
        stats.latency_score.count() + stats.latency_tails.count() + stats.latency_heads.count(),
        "histograms must record exactly the settled requests"
    );
}

/// Requests that outwait the deadline expire unscored — typed
/// `ServeError::Expired` with the real wait, counted as expired (not
/// failed) — while requests the crew reaches in time are still answered.
#[test]
fn stale_requests_expire_before_scoring() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored: Arc::clone(&scored) }, Default::default())
        .threads(1)
        .block(1)
        .split_crew(false)
        .deadline(Duration::from_millis(2))
        .build();
    // The first request is cut from an empty queue immediately (waited
    // ≈ 0), then occupies the crew for ~20 ms — every queued follower
    // outwaits the 2 ms deadline before its own cut.
    let tickets: Vec<_> =
        (0..5).map(|i| engine.submit_rank_tail(i % N, 0, 1).expect("admitted")).collect();
    let mut answered = 0;
    let mut expired = 0;
    for ticket in tickets {
        match ticket.wait_result() {
            Ok(rank) => {
                assert!(rank >= 1.0);
                answered += 1;
            }
            Err(err @ ServeError::Expired { class, waited, deadline }) => {
                assert!(err.is_expired());
                assert_eq!(class, RequestClass::Tails);
                assert_eq!(deadline, Duration::from_millis(2));
                assert!(waited > deadline, "expired without outwaiting: {waited:?}");
                expired += 1;
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(answered >= 1, "the front request must be scored");
    assert!(expired >= 1, "a 20 ms crew with a 2 ms deadline must expire the backlog");
    let stats = engine.stats();
    assert_eq!(stats.queries_served, answered);
    assert_eq!(stats.queries_expired, expired);
    assert_eq!(stats.queries_failed, 0, "expiry is not an engine failure");
    // Expired requests never reached the crew.
    assert_eq!(scored.load(Relaxed) as u64, answered);
}

/// With fair dequeue on, a flooding client's backlog cannot monopolise
/// block cuts: a late second client's request rides the very next cut,
/// jumping the flooder's queue, and the mixed cut is counted.
#[test]
fn fair_dequeue_interleaves_clients_within_a_class() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default())
        .threads(1)
        .block(2)
        .split_crew(false)
        .build();
    let flooder = engine.client(1);
    let latecomer = engine.client(2);
    // The flooder queues a deep backlog (the first occupies the crew).
    let flood: Vec<_> =
        (0..8).map(|i| flooder.submit_rank_tail(i % N, 0, 1).expect("admitted")).collect();
    let late = latecomer.submit_rank_tail(5, 0, 1).expect("admitted");
    // Fairness makes the latecomer's lone request ride an early cut
    // instead of waiting out all 8 flooded requests: when it settles, a
    // strict-FIFO engine would have had to score the whole flood first.
    let _ = late.wait();
    let scored_at_late = {
        let stats = engine.stats();
        assert!(stats.fair_cuts >= 1, "no cut mixed the two clients");
        stats.queries_served
    };
    assert!(
        scored_at_late < 9,
        "latecomer settled only after the full flood ({scored_at_late} served) — \
         round-robin never cut ahead of the flooder's lane"
    );
    for t in flood {
        assert!(t.wait() >= 1.0, "fairness must not starve the flooder either");
    }
}

/// With fair dequeue disabled, client keys change nothing: settles follow
/// strict arrival order, so the latecomer waits out the entire flood.
#[test]
fn fair_dequeue_off_restores_strict_fifo() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default())
        .threads(1)
        .block(2)
        .split_crew(false)
        .fair_dequeue(false)
        .build();
    let flood: Vec<_> =
        (0..6).map(|i| engine.client(1).submit_rank_tail(i % N, 0, 1).expect("admitted")).collect();
    let late = engine.client(2).submit_rank_tail(5, 0, 1).expect("admitted");
    let _ = late.wait();
    let stats = engine.stats();
    assert_eq!(stats.fair_cuts, 0, "fairness disabled must never count a mixed cut");
    assert_eq!(stats.queries_served, 7, "strict FIFO: the whole flood settles first");
    for t in flood {
        assert!(t.wait() >= 1.0);
    }
}

/// The per-class latency histograms record one sample per settled request
/// in the right class, and their quantiles reflect real waits.
#[test]
fn latency_histograms_account_per_class() {
    let (engine, _) = slow_engine();
    for i in 0..4 {
        assert!(engine.rank_tail(i % N, 0, 1) >= 1.0);
    }
    assert!(engine.rank_head(1, 0, 2) >= 1.0);
    assert_eq!(engine.score(0, 0, 1), 0.0);
    let stats = engine.stats();
    assert_eq!(stats.latency_tails.count(), 4);
    assert_eq!(stats.latency_heads.count(), 1);
    assert_eq!(stats.latency_score.count(), 1);
    // A ~20 ms scored row cannot settle in under a millisecond, and a
    // settled request always has a positive quantile.
    let p50 = stats.latency_tails.quantile(0.5).expect("non-empty histogram");
    assert!(p50 >= Duration::from_millis(1), "tail p50 {p50:?} below the model's floor");
    assert!(stats.latency_score.quantile(1.0).expect("non-empty") > Duration::ZERO);
}

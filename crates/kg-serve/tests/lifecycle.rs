//! Lifecycle guarantees of [`KgEngine`]: dropping the engine never
//! deadlocks or leaks workers (even with queries still pending), malformed
//! ids are rejected at submit time, a panic inside a model's scoring code
//! fails **only the offending request** — the engine stays healthy for
//! every other client — and the scheduler knobs (linger, split-crew,
//! thread clamping) behave as documented.

use kg_models::{BatchScorer, LinkPredictor};
use kg_serve::KgEngine;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 12;

/// A model slow enough that a burst of submissions outruns the dispatcher,
/// so shutdown reliably races a non-empty queue.
struct Slow {
    scored: Arc<AtomicUsize>,
}

impl LinkPredictor for Slow {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.0
    }
    fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(20));
        self.scored.fetch_add(1, Relaxed);
        out.fill(1.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        self.score_tails(0, 0, out);
    }
}

impl BatchScorer for Slow {}

/// Panics when asked to score head entity `trip_on` — stands in for any
/// fallible scorer override. `native` flips the crew between entity-shard
/// and query-split layouts.
struct Grenade {
    trip_on: usize,
    native: bool,
}

impl LinkPredictor for Grenade {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, h: usize, _: usize, _: usize) -> f32 {
        assert!(h != self.trip_on, "grenade tripped");
        0.0
    }
    fn score_tails(&self, h: usize, _: usize, out: &mut [f32]) {
        assert!(h != self.trip_on, "grenade tripped");
        out.fill(0.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.0);
    }
}

impl BatchScorer for Grenade {
    fn native_shard_scoring(&self) -> bool {
        self.native
    }
}

/// A grenade slow enough that the pipelined dispatcher reliably has the
/// *next* block already in flight when the panic lands: each scored row
/// sleeps a few milliseconds, so a burst of submissions queues several
/// blocks and the dispatcher's dispatch-before-answer chaining overlaps
/// them.
struct SlowGrenade {
    trip_on: usize,
}

impl LinkPredictor for SlowGrenade {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.0
    }
    fn score_tails(&self, h: usize, _: usize, out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(5));
        assert!(h != self.trip_on, "grenade tripped");
        out.fill(0.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(5));
        out.fill(0.0);
    }
}

impl BatchScorer for SlowGrenade {}

/// A model that knows no relation bound (`n_relations() == None`) and
/// panics — like a real embedding table would — when handed a relation id
/// beyond its two relations. The worst case the submit-time check cannot
/// cover, so the engine's per-request isolation has to.
struct NoBound;

impl LinkPredictor for NoBound {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, _: usize, r: usize, _: usize) -> f32 {
        [0.5f32, 0.25][r]
    }
    fn score_tails(&self, _: usize, r: usize, out: &mut [f32]) {
        out.fill([0.5f32, 0.25][r]);
    }
    fn score_heads(&self, r: usize, _: usize, out: &mut [f32]) {
        out.fill([0.5f32, 0.25][r]);
    }
}

impl BatchScorer for NoBound {}

#[test]
fn drop_without_queries_joins_cleanly() {
    for threads in [1, 4] {
        let engine =
            KgEngine::with_filter(Grenade { trip_on: N, native: true }, Default::default())
                .threads(threads)
                .build();
        drop(engine); // must return promptly, no request ever submitted
    }
}

#[test]
fn drop_with_pending_queries_neither_hangs_nor_strands_tickets() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored: Arc::clone(&scored) }, Default::default())
        .threads(2)
        .block(4)
        .build();
    // Outrun the dispatcher: at ~20 ms per scored row, most of these are
    // still queued when the engine drops.
    let tickets: Vec<_> = (0..24)
        .map(|i| engine.submit_rank_tail(i % N, 0, (i + 1) % N).expect("admitted"))
        .collect();
    drop(engine);
    // Every ticket must resolve: answered before shutdown, or failed by it
    // — never left pending (a hung wait() would time the test out).
    let mut answered = 0;
    let mut failed = 0;
    for ticket in tickets {
        assert!(ticket.is_settled(), "ticket left unsettled after engine drop");
        match catch_unwind(AssertUnwindSafe(|| ticket.wait())) {
            Ok(rank) => {
                assert!(rank >= 1.0);
                answered += 1;
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "non-string panic".into());
                assert!(msg.contains("engine shut down"), "unexpected failure: {msg}");
                failed += 1;
            }
        }
    }
    assert_eq!(answered + failed, 24);
    assert!(failed > 0, "expected the shutdown to catch at least one pending query");
}

#[test]
fn answered_tickets_survive_engine_drop() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default()).build();
    let score = engine.submit_score(1, 0, 2).expect("admitted");
    let rank = engine.submit_rank_tail(1, 0, 2).expect("admitted");
    // The score request sits ahead of the rank request in the queue, so
    // once the rank is answered the score ticket must be settled too.
    assert_eq!(rank.wait(), 1.0 + (N as f64 - 1.0) / 2.0); // all-ties row, self excluded
    assert!(score.is_settled());
    drop(engine);
    // Waiting after the drop returns the answer computed before shutdown.
    assert_eq!(score.wait(), 0.0);
}

/// A scoring panic fails only the offending request: healthy queries in
/// the same block (and after it) are still answered, the engine never
/// poisons, and the panic reaches the offending caller with the model's
/// original message.
fn assert_panic_is_isolated(native: bool) {
    let engine = KgEngine::with_filter(Grenade { trip_on: 5, native }, Default::default())
        .threads(3)
        .block(8)
        .build();
    // A healthy query first: the crew is up.
    assert!(engine.rank_tail(0, 0, 1) >= 1.0);
    // Submit a block mixing healthy queries around the tripping one; only
    // the tripping ticket may fail.
    let before = engine.submit_rank_tail(2, 0, 1).expect("admitted");
    let tripping = engine.submit_rank_tail(5, 0, 1).expect("admitted");
    let after = engine.submit_rank_tail(3, 0, 1).expect("admitted");
    assert!(before.wait() >= 1.0, "healthy query before the panic must be answered");
    assert!(after.wait() >= 1.0, "healthy query after the panic must be answered");
    let msg = match catch_unwind(AssertUnwindSafe(|| tripping.wait())) {
        Ok(rank) => panic!("tripping query answered with rank {rank}"),
        Err(payload) => {
            payload.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into())
        }
    };
    assert!(
        msg.contains("panicked") && msg.contains("grenade tripped"),
        "panic did not carry the original message: {msg}"
    );
    // The engine is NOT poisoned: other clients keep getting answers.
    assert!(engine.rank_tail(0, 0, 1) >= 1.0, "engine must stay healthy after an isolated panic");
    assert_eq!(engine.score(0, 0, 0), 0.0);
    let stats = engine.stats();
    assert_eq!(stats.queries_failed, 1, "exactly the tripping request fails");
    assert_eq!(stats.queries_served, 5);
    // …and drop still shuts the crew down without deadlocking.
    drop(engine);
}

#[test]
fn scoring_panic_is_isolated_entity_shard_mode() {
    assert_panic_is_isolated(true);
}

#[test]
fn scoring_panic_is_isolated_query_split_mode() {
    assert_panic_is_isolated(false);
}

/// A model panic inside a *pipelined* block — the dispatcher has already
/// dispatched block N+1 when block N's results land — must still fail only
/// the tripping ticket: the in-flight follow-up block is answered normally,
/// the crew is not poisoned, and the pipeline keeps chaining afterwards.
#[test]
fn pipelined_block_panic_fails_only_the_tripping_ticket() {
    let engine = KgEngine::with_filter(SlowGrenade { trip_on: 5 }, Default::default())
        .threads(2)
        .block(4)
        .build();
    // Burst 12 tail queries: at ~5 ms per scored row the dispatcher cuts
    // three 4-query blocks and chains them back-to-back, so the grenade in
    // the middle block trips while its successor is already being scored.
    let tickets: Vec<_> =
        (0..12).map(|h| engine.submit_rank_tail(h % N, 0, 1).expect("admitted")).collect();
    let mut failed = Vec::new();
    for (h, ticket) in tickets.into_iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| ticket.wait())) {
            Ok(rank) => assert!(rank >= 1.0, "healthy query {h} got rank {rank}"),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "non-string panic".into());
                assert!(msg.contains("grenade tripped"), "query {h}: unexpected failure: {msg}");
                failed.push(h);
            }
        }
    }
    assert_eq!(failed, vec![5], "exactly the tripping query fails");
    // The pipeline must keep running after the isolated panic…
    assert!(engine.rank_tail(0, 0, 1) >= 1.0, "engine must stay healthy");
    let stats = engine.stats();
    assert_eq!(stats.queries_failed, 1);
    assert_eq!(stats.queries_served, 12);
    // …and the burst must actually have exercised the overlap path: at
    // least one follow-up block was dispatched before its predecessor was
    // answered.
    assert!(
        stats.blocks_overlapped >= 1,
        "a 3-block burst on a slow model must overlap at least once, got {}",
        stats.blocks_overlapped
    );
    drop(engine); // no hung barrier after a mid-pipeline panic
}

#[test]
fn model_panic_in_score_requests_fails_only_that_ticket() {
    let engine = KgEngine::with_filter(Grenade { trip_on: 2, native: false }, Default::default())
        .threads(2)
        .build();
    let good = engine.submit_score(0, 0, 1).expect("admitted");
    let bad = engine.submit_score(2, 0, 1).expect("admitted");
    let also_good = engine.submit_score(1, 0, 1).expect("admitted");
    assert_eq!(good.wait(), 0.0);
    assert!(catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err());
    assert_eq!(also_good.wait(), 0.0, "score requests after the panic must still be answered");
    assert_eq!(engine.score(3, 0, 1), 0.0, "engine must stay healthy after a score panic");
    drop(engine); // no hang after an isolated score-path panic
}

/// **Regression (the PR's headline bug):** `KgEngine::with_filter` used to
/// leave the relation bound unset, so an out-of-range relation id sailed
/// past the submit-time check, panicked a worker, and poisoned the engine
/// for every other client. The builder now derives the bound from the
/// model's own `n_relations()`: the bad id is rejected on the caller's
/// thread and the engine keeps serving.
#[test]
fn with_filter_derives_the_relation_bound_from_the_model() {
    let mut rng = kg_linalg::SeededRng::new(0xBAD);
    let model = kg_models::BlmModel::new(
        kg_models::blm::classics::distmult(),
        kg_models::Embeddings::init(N, 2, 8, &mut rng),
    );
    // No `.relations(..)` — the bound must come from the model itself.
    let engine = KgEngine::with_filter(model, Default::default()).threads(2).build();
    let rejected = catch_unwind(AssertUnwindSafe(|| engine.rank_tail(0, 99, 1)));
    let msg = match rejected {
        Ok(rank) => panic!("out-of-range relation answered with rank {rank}"),
        Err(payload) => {
            payload.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into())
        }
    };
    assert!(
        msg.contains("relation id 99 out of range"),
        "expected a submit-time rejection, got: {msg}"
    );
    // Rejected at submit: nothing reached the crew, nothing was poisoned,
    // nothing even entered the queue.
    let stats = engine.stats();
    assert_eq!(stats.queries_served + stats.queries_failed + stats.depth_tails, 0);
    assert!(engine.rank_tail(0, 1, 1) >= 1.0, "engine must keep serving other clients");
}

/// The residual case the bound cannot cover — a model that reports no
/// `n_relations()` — must not poison the engine either: the worker-side
/// panic is caught and fails only the malformed request's ticket.
#[test]
fn unknown_bound_relation_panic_fails_only_its_own_ticket() {
    let engine = KgEngine::with_filter(NoBound, Default::default()).threads(2).block(8).build();
    let good = engine.submit_rank_tail(0, 0, 1).expect("admitted");
    let bad = engine.submit_rank_tail(0, 7, 1).expect("admitted"); // relation 7 of 2: model panics
    let also_good = engine.submit_rank_tail(0, 1, 1).expect("admitted");
    assert!(good.wait() >= 1.0);
    assert!(also_good.wait() >= 1.0, "healthy request in the same block must be answered");
    assert!(catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err());
    // One poisoned client never takes the engine down for the rest.
    assert!(engine.rank_head(1, 0, 2) >= 1.0);
    assert_eq!(engine.stats().queries_failed, 1);
    drop(engine);
}

/// `threads(n)` far above the entity count used to build width-0 shards
/// whose workers parked forever; the crew is now clamped to the table
/// size for every model family.
#[test]
fn oversized_crews_are_clamped_to_the_entity_count() {
    for native in [true, false] {
        let engine = KgEngine::with_filter(Grenade { trip_on: N, native }, Default::default())
            .threads(1000)
            .build();
        assert_eq!(engine.threads(), N, "native={native}");
        assert!(engine.rank_tail(0, 0, 1) >= 1.0);
        assert!(engine.rank_head(1, 0, 2) >= 1.0);
        drop(engine); // joins N workers, not 1000
    }
}

/// With a linger budget, queries trickling in well inside the budget are
/// accumulated into one block instead of being cut one by one.
#[test]
fn linger_accumulates_trickling_queries_into_full_blocks() {
    let engine = KgEngine::with_filter(Grenade { trip_on: N, native: true }, Default::default())
        .threads(2)
        .block(64)
        .linger(Duration::from_millis(400))
        .build();
    // All submissions land within a few microseconds — far inside the
    // linger budget — so the dispatcher cuts them as one block.
    let tickets: Vec<_> =
        (0..16).map(|i| engine.submit_rank_tail(i % N, 0, 1).expect("admitted")).collect();
    for ticket in tickets {
        assert!(ticket.wait() >= 1.0);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries_served, 16);
    assert!(
        stats.blocks_cut <= 2,
        "linger should have batched 16 trickled queries into at most 2 blocks, cut {}",
        stats.blocks_cut
    );
    assert!(stats.mean_block_fill >= 8.0, "mean fill {}", stats.mean_block_fill);
}

/// With both directions backlogged and at least two workers, the
/// dispatcher splits the crew and drains tail and head blocks
/// concurrently — observable through the stats counters, with every
/// ticket still resolving.
#[test]
fn split_crew_engages_on_mixed_direction_backlogs() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default())
        .threads(2)
        .block(4)
        .split_crew(true)
        .build();
    let tails: Vec<_> =
        (0..12).map(|i| engine.submit_rank_tail(i % N, 0, 1).expect("admitted")).collect();
    let heads: Vec<_> =
        (0..12).map(|i| engine.submit_rank_head(1, 0, i % N).expect("admitted")).collect();
    for ticket in tails.into_iter().chain(heads) {
        assert!(ticket.wait() >= 1.0); // no starvation: every ticket resolves
    }
    let stats = engine.stats();
    assert_eq!(stats.queries_served, 24);
    assert!(
        stats.split_blocks > 0,
        "a 12+12 mixed backlog on a 2-worker crew must engage split-crew draining"
    );
    assert_eq!(stats.depth_tails + stats.depth_heads, 0, "queues drained");
}

/// **Regression pin (shutdown during linger):** a dispatcher lingering on
/// an under-filled block sleeps on a timed condvar wait; `Drop` signals
/// shutdown and notifies under the queue lock, which must wake that sleep
/// immediately. If the wake were lost, this drop would burn the full
/// multi-second linger budget before the queued ticket settles.
#[test]
fn shutdown_during_linger_sleep_settles_promptly() {
    let linger = Duration::from_secs(5);
    let engine = KgEngine::with_filter(Grenade { trip_on: N, native: true }, Default::default())
        .threads(2)
        .block(64)
        .linger(linger)
        .build();
    // One query: far under the block size, so the dispatcher enters the
    // linger sleep against a 5 s budget.
    let ticket = engine.submit_rank_tail(0, 0, 1).expect("admitted");
    // Give the dispatcher a moment to actually reach the timed wait (not
    // required for correctness — drop-before-sleep also settles — but it
    // makes the test exercise the wake-from-linger path).
    std::thread::sleep(Duration::from_millis(50));
    let dropped_at = std::time::Instant::now();
    drop(engine);
    let elapsed = dropped_at.elapsed();
    assert!(ticket.is_settled(), "ticket left pending after engine drop");
    assert!(
        elapsed < linger / 2,
        "drop during a linger sleep took {elapsed:?} — the shutdown notify was missed"
    );
    // Settled either way is fine (answered if the cut raced the shutdown,
    // failed otherwise) — it must simply not hang or wait out the budget.
    let _ = catch_unwind(AssertUnwindSafe(|| ticket.wait()));
}

/// **Regression pin (depth-counter accounting):** hammer the engine from
/// concurrent submitters while it shuts down mid-burst, across every
/// request class, then assert the per-class depth gauges all returned to
/// exactly zero and every admitted request settled exactly once. Any
/// early-exit path that forgets (or double-counts) a depth decrement —
/// failed worker send, per-query rescore, `drain_fail` racing a concurrent
/// submit — shows up here as a non-zero final depth.
#[test]
fn depth_counters_return_to_zero_after_shutdown_race() {
    for round in 0..4 {
        let scored = Arc::new(AtomicUsize::new(0));
        let engine =
            KgEngine::with_filter(Slow { scored: Arc::clone(&scored) }, Default::default())
                .threads(2)
                .block(4)
                .build();
        let probe = engine.stats_probe();
        let admitted = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for worker in 0..3usize {
                let engine = &engine;
                let admitted = Arc::clone(&admitted);
                scope.spawn(move || {
                    for i in 0..20usize {
                        let ok = match (worker + i) % 3 {
                            0 => engine.submit_score(i % N, 0, (i + 1) % N).map(drop).is_ok(),
                            1 => engine.submit_rank_tail(i % N, 0, (i + 1) % N).map(drop).is_ok(),
                            _ => engine.submit_rank_head(i % N, 0, (i + 1) % N).map(drop).is_ok(),
                        };
                        if ok {
                            admitted.fetch_add(1, Relaxed);
                        }
                    }
                });
            }
        });
        // At ~20 ms per scored row the dispatcher is still deep in the
        // backlog when the scope ends; a different pre-drop margin each
        // round lands the shutdown drain at a different queue fill, racing
        // it against different in-flight blocks.
        std::thread::sleep(Duration::from_millis(5 * round));
        drop(engine);
        let stats = probe.stats();
        assert_eq!(
            (stats.depth_score, stats.depth_tails, stats.depth_heads),
            (0, 0, 0),
            "round {round}: a depth counter leaked across the shutdown race"
        );
        // Dropped tickets still settle through served/failed exactly once.
        assert_eq!(
            stats.queries_served + stats.queries_failed,
            admitted.load(Relaxed) as u64,
            "round {round}: settled count diverged from admitted submissions"
        );
    }
}

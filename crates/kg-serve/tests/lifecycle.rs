//! Lifecycle guarantees of [`KgEngine`]: dropping the engine never
//! deadlocks or leaks workers (even with queries still pending), and a
//! panic inside a model's scoring override propagates to the affected
//! callers instead of hanging the crew — the serving counterpart of the
//! offline engine's barrier-poisoning tests.

use kg_models::{BatchScorer, LinkPredictor};
use kg_serve::KgEngine;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 12;

/// A model slow enough that a burst of submissions outruns the dispatcher,
/// so shutdown reliably races a non-empty queue.
struct Slow {
    scored: Arc<AtomicUsize>,
}

impl LinkPredictor for Slow {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.0
    }
    fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
        std::thread::sleep(Duration::from_millis(20));
        self.scored.fetch_add(1, Relaxed);
        out.fill(1.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        self.score_tails(0, 0, out);
    }
}

impl BatchScorer for Slow {}

/// Panics when asked to score head entity `trip_on` — stands in for any
/// fallible scorer override. `native` flips the crew between entity-shard
/// and query-split layouts.
struct Grenade {
    trip_on: usize,
    native: bool,
}

impl LinkPredictor for Grenade {
    fn n_entities(&self) -> usize {
        N
    }
    fn score_triple(&self, h: usize, _: usize, _: usize) -> f32 {
        assert!(h != self.trip_on, "grenade tripped");
        0.0
    }
    fn score_tails(&self, h: usize, _: usize, out: &mut [f32]) {
        assert!(h != self.trip_on, "grenade tripped");
        out.fill(0.0);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.0);
    }
}

impl BatchScorer for Grenade {
    fn native_shard_scoring(&self) -> bool {
        self.native
    }
}

#[test]
fn drop_without_queries_joins_cleanly() {
    for threads in [1, 4] {
        let engine =
            KgEngine::with_filter(Grenade { trip_on: N, native: true }, Default::default())
                .threads(threads)
                .build();
        drop(engine); // must return promptly, no request ever submitted
    }
}

#[test]
fn drop_with_pending_queries_neither_hangs_nor_strands_tickets() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored: Arc::clone(&scored) }, Default::default())
        .threads(2)
        .block(4)
        .build();
    // Outrun the dispatcher: at ~20 ms per scored row, most of these are
    // still queued when the engine drops.
    let tickets: Vec<_> = (0..24).map(|i| engine.submit_rank_tail(i % N, 0, (i + 1) % N)).collect();
    drop(engine);
    // Every ticket must resolve: answered before shutdown, or failed by it
    // — never left pending (a hung wait() would time the test out).
    let mut answered = 0;
    let mut failed = 0;
    for ticket in tickets {
        match catch_unwind(AssertUnwindSafe(|| ticket.wait())) {
            Ok(rank) => {
                assert!(rank >= 1.0);
                answered += 1;
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_else(|| "non-string panic".into());
                assert!(msg.contains("engine shut down"), "unexpected failure: {msg}");
                failed += 1;
            }
        }
    }
    assert_eq!(answered + failed, 24);
    assert!(failed > 0, "expected the shutdown to catch at least one pending query");
}

#[test]
fn answered_tickets_survive_engine_drop() {
    let scored = Arc::new(AtomicUsize::new(0));
    let engine = KgEngine::with_filter(Slow { scored }, Default::default()).build();
    let score = engine.submit_score(1, 0, 2);
    let rank = engine.submit_rank_tail(1, 0, 2);
    // The score request sits ahead of the rank request in the queue, so
    // once the rank is answered the score ticket must be settled too.
    assert_eq!(rank.wait(), 1.0 + (N as f64 - 1.0) / 2.0); // all-ties row, self excluded
    drop(engine);
    // Waiting after the drop returns the answer computed before shutdown.
    assert_eq!(score.wait(), 0.0);
}

fn assert_panic_propagates(native: bool) {
    let engine = KgEngine::with_filter(Grenade { trip_on: 5, native }, Default::default())
        .threads(3)
        .block(8)
        .build();
    // A healthy query first: the crew is up.
    assert!(engine.rank_tail(0, 0, 1) >= 1.0);
    // The tripping query must panic on the caller, not hang the crew.
    let tripped = catch_unwind(AssertUnwindSafe(|| engine.rank_tail(5, 0, 1)));
    let msg = match tripped {
        Ok(rank) => panic!("tripping query answered with rank {rank}"),
        Err(payload) => {
            payload.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic".into())
        }
    };
    assert!(
        msg.contains("panicked") && msg.contains("grenade tripped"),
        "panic did not carry the original message: {msg}"
    );
    // The engine is poisoned: later requests fail fast with the original
    // cause instead of queueing forever…
    let later = catch_unwind(AssertUnwindSafe(|| engine.score(0, 0, 0)));
    assert!(later.is_err(), "poisoned engine accepted new work");
    // …and drop still shuts the crew down without deadlocking.
    drop(engine);
}

#[test]
fn worker_panic_propagates_entity_shard_mode() {
    assert_panic_propagates(true);
}

#[test]
fn worker_panic_propagates_query_split_mode() {
    assert_panic_propagates(false);
}

#[test]
fn model_panic_in_score_requests_poisons_cleanly() {
    let engine = KgEngine::with_filter(Grenade { trip_on: 2, native: false }, Default::default())
        .threads(2)
        .build();
    let good = engine.submit_score(0, 0, 1);
    let bad = engine.submit_score(2, 0, 1);
    assert_eq!(good.wait(), 0.0);
    assert!(catch_unwind(AssertUnwindSafe(|| bad.wait())).is_err());
    drop(engine); // no hang after poisoning via the score path
}

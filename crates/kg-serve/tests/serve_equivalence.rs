//! Equivalence suite for the serving engine: every [`KgEngine`] response —
//! score, filtered rank, top-k — must be **bit-identical** to the
//! sequential per-query [`LinkPredictor`] reference, for every shipped
//! model family, any worker-thread count, any batch block size, and any
//! interleaving of concurrently submitting clients.
//!
//! This is the serving counterpart of `kg-eval`'s batch/shard equivalence
//! suites: the engine's batching queue may group queries into arbitrary
//! blocks depending on arrival timing, and its crew shards each block
//! across threads — none of which may show in any answer, because shard
//! scores are bit-identical slices of the full-table rows and the
//! rank/top-k primitives are shared with the per-query path.

use kg_core::{FilterIndex, Triple};
use kg_eval::ranking::{filtered_rank, top_k};
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_models::nnm::{GenApprox, NnmConfig};
use kg_models::tdm::{RotatE, TdmConfig};
use kg_models::{BatchScorer, BlmModel, Embeddings, KernelPolicy, LinkPredictor};
use kg_serve::{KgEngine, RankTicket, RequestClass, ScoreTicket, ServeError, TopKTicket};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const N_ENTITIES: usize = 40;
const N_RELATIONS: usize = 3;

/// The all-ties degenerate case: every answer is decided purely by tie
/// counting and deterministic tie-breaking.
struct Flat {
    n: usize,
}

impl LinkPredictor for Flat {
    fn n_entities(&self) -> usize {
        self.n
    }
    fn score_triple(&self, _: usize, _: usize, _: usize) -> f32 {
        0.125
    }
    fn score_tails(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.125);
    }
    fn score_heads(&self, _: usize, _: usize, out: &mut [f32]) {
        out.fill(0.125);
    }
}

impl BatchScorer for Flat {}

/// One request drawn by the property, plus its reference answer.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Score { h: usize, r: usize, t: usize },
    RankTail { h: usize, r: usize, t: usize },
    RankHead { h: usize, r: usize, t: usize },
    TopKTails { h: usize, r: usize, k: usize },
    TopKHeads { r: usize, t: usize, k: usize },
}

#[derive(Debug, Clone, PartialEq)]
enum Answer {
    Score(f32),
    Rank(f64),
    TopK(Vec<(usize, f32)>),
}

fn decode(raw: &[(u8, usize, usize, usize, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, a, b, c, k)| match kind % 5 {
            0 => Op::Score { h: a, r: b, t: c },
            1 => Op::RankTail { h: a, r: b, t: c },
            2 => Op::RankHead { h: a, r: b, t: c },
            3 => Op::TopKTails { h: a, r: b, k },
            _ => Op::TopKHeads { r: b, t: c, k },
        })
        .collect()
}

/// The sequential per-query reference: one score row at a time through
/// [`LinkPredictor`], ranks and top-k via the shared `kg-eval` primitives.
fn reference(model: &dyn LinkPredictor, filter: &FilterIndex, op: Op) -> Answer {
    let n = model.n_entities();
    let mut row = vec![0.0f32; n];
    match op {
        Op::Score { h, r, t } => Answer::Score(model.score_triple(h, r, t)),
        Op::RankTail { h, r, t } => {
            model.score_tails(h, r, &mut row);
            let known = filter.tails(kg_core::EntityId(h as u32), kg_core::RelationId(r as u32));
            Answer::Rank(filtered_rank(&row, t, known))
        }
        Op::RankHead { h, r, t } => {
            model.score_heads(r, t, &mut row);
            let known = filter.heads(kg_core::RelationId(r as u32), kg_core::EntityId(t as u32));
            Answer::Rank(filtered_rank(&row, h, known))
        }
        Op::TopKTails { h, r, k } => {
            model.score_tails(h, r, &mut row);
            Answer::TopK(top_k(&row, k))
        }
        Op::TopKHeads { r, t, k } => {
            model.score_heads(r, t, &mut row);
            Answer::TopK(top_k(&row, k))
        }
    }
}

fn engine_answer(engine: &KgEngine, op: Op) -> Answer {
    match op {
        Op::Score { h, r, t } => Answer::Score(engine.score(h, r, t)),
        Op::RankTail { h, r, t } => Answer::Rank(engine.rank_tail(h, r, t)),
        Op::RankHead { h, r, t } => Answer::Rank(engine.rank_head(h, r, t)),
        Op::TopKTails { h, r, k } => Answer::TopK(engine.top_k_tails(h, r, k)),
        Op::TopKHeads { r, t, k } => Answer::TopK(engine.top_k_heads(r, t, k)),
    }
}

/// A filter with repeated `(h, r)` / `(r, t)` groups so filtered ranking
/// actually excludes candidates.
fn filter(seed: u64) -> FilterIndex {
    let mut rng = SeededRng::new(seed);
    FilterIndex::build(
        &(0..60)
            .map(|i| {
                if i % 4 == 0 {
                    Triple::new(2, 1, rng.below(N_ENTITIES) as u32)
                } else {
                    Triple::new(
                        rng.below(N_ENTITIES) as u32,
                        rng.below(N_RELATIONS) as u32,
                        rng.below(N_ENTITIES) as u32,
                    )
                }
            })
            .collect::<Vec<_>>(),
    )
}

/// Drive `ops` through an engine from `clients` concurrently submitting
/// threads and assert each answer equals the sequential reference, bit for
/// bit. The model is shared as an `Arc` — the pointer forwarding impls
/// keep its batch/shard overrides — so one set of parameters backs both
/// the engine and the reference path.
fn assert_serve_matches_reference<M>(
    model: Arc<M>,
    name: &str,
    ops: &[Op],
    threads: usize,
    block: usize,
) where
    M: BatchScorer + Send + Sync + 'static,
{
    assert_serve_matches_reference_cfg(model, name, ops, threads, block, Duration::ZERO, true);
}

/// [`assert_serve_matches_reference`] with the latency-aware scheduler
/// knobs explicit: a linger budget and split-crew on/off. Also asserts
/// that **every ticket resolves** (no starvation: the per-engine stats
/// account for every submitted op, none failed, queues drained).
fn assert_serve_matches_reference_cfg<M>(
    model: Arc<M>,
    name: &str,
    ops: &[Op],
    threads: usize,
    block: usize,
    linger: Duration,
    split_crew: bool,
) where
    M: BatchScorer + Send + Sync + 'static,
{
    let fi = filter(0x5E21);
    let expected: Vec<Answer> = ops.iter().map(|&op| reference(&*model, &fi, op)).collect();

    for clients in [1usize, 3] {
        // Pinned to Exact: this suite asserts bit-identity against the
        // sequential reference, so a fast-tier CI environment must not
        // flip the engine's kernels from outside.
        let engine = Arc::new(
            KgEngine::with_filter(Arc::clone(&model), fi.clone())
                .threads(threads)
                .block(block)
                .linger(linger)
                .split_crew(split_crew)
                .policy(KernelPolicy::Exact)
                .build(),
        );
        let chunk = ops.len().div_ceil(clients).max(1);
        let answers = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (slice_idx, slice) in ops.chunks(chunk).enumerate() {
                let engine = Arc::clone(&engine);
                handles.push(scope.spawn(move || {
                    let got: Vec<Answer> =
                        slice.iter().map(|&op| engine_answer(&engine, op)).collect();
                    (slice_idx, got)
                }));
            }
            let mut merged: Vec<Vec<Answer>> = vec![Vec::new(); handles.len()];
            for handle in handles {
                let (slice_idx, got) = handle.join().expect("client thread panicked");
                merged[slice_idx] = got;
            }
            merged.concat()
        });
        assert_eq!(
            answers, expected,
            "{name}: serve answers diverged (threads={threads}, block={block}, \
             clients={clients}, linger={linger:?}, split_crew={split_crew})"
        );
        let stats = engine.stats();
        assert_eq!(
            stats.queries_served,
            ops.len() as u64,
            "{name}: every submitted op must be answered exactly once"
        );
        assert_eq!(stats.queries_failed, 0, "{name}: no op may fail");
        assert_eq!(
            stats.depth_score + stats.depth_tails + stats.depth_heads,
            0,
            "{name}: queues must drain"
        );
    }
}

/// One outstanding submitted op, whichever ticket type it produced.
enum AnyTicket {
    Score(ScoreTicket),
    Rank(RankTicket),
    TopK(TopKTicket),
}

impl AnyTicket {
    fn wait_result(self) -> Result<Answer, ServeError> {
        match self {
            AnyTicket::Score(t) => t.wait_result().map(Answer::Score),
            AnyTicket::Rank(t) => t.wait_result().map(Answer::Rank),
            AnyTicket::TopK(t) => t.wait_result().map(Answer::TopK),
        }
    }
}

/// Submit `op` through a per-client handle, honouring `retry_after` on
/// shed until the engine admits it. Returns the ticket plus how many
/// sheds the submission ate.
fn submit_with_backoff(engine: &KgEngine, client: u64, op: Op) -> (AnyTicket, u64) {
    let mut sheds = 0u64;
    loop {
        let handle = engine.client(client);
        let submitted = match op {
            Op::Score { h, r, t } => handle.submit_score(h, r, t).map(AnyTicket::Score),
            Op::RankTail { h, r, t } => handle.submit_rank_tail(h, r, t).map(AnyTicket::Rank),
            Op::RankHead { h, r, t } => handle.submit_rank_head(h, r, t).map(AnyTicket::Rank),
            Op::TopKTails { h, r, k } => handle.submit_top_k_tails(h, r, k).map(AnyTicket::TopK),
            Op::TopKHeads { r, t, k } => handle.submit_top_k_heads(r, t, k).map(AnyTicket::TopK),
        };
        match submitted {
            Ok(ticket) => return (ticket, sheds),
            Err(kg_serve::SubmitError::Shed { retry_after, .. }) => {
                sheds += 1;
                // A live engine keeps draining, so honouring the hint
                // always readmits eventually; cap the nap so a stale
                // (pre-measurement) hint cannot slow the suite.
                std::thread::sleep(retry_after.min(Duration::from_millis(2)));
            }
        }
    }
}

/// The admission-control matrix: queue caps (tiny / default / unbounded)
/// × deadline on/off × fair dequeue on/off, driven through the keyed
/// per-client submit path with retry-after backoff on shed. Every ticket
/// settles — answered or expired, never failed — every *answered*
/// response is bit-identical to the sequential reference, and the
/// overload counters account for every admission exactly once.
fn assert_admission_never_shows<M>(
    model: Arc<M>,
    name: &str,
    ops: &[Op],
    cap: usize,
    deadline: Option<Duration>,
    fair: bool,
) where
    M: BatchScorer + Send + Sync + 'static,
{
    let fi = filter(0x5E21);
    let expected: Vec<Answer> = ops.iter().map(|&op| reference(&*model, &fi, op)).collect();

    let mut builder = KgEngine::with_filter(Arc::clone(&model), fi)
        .threads(2)
        .block(4)
        .fair_dequeue(fair)
        .policy(KernelPolicy::Exact);
    for class in RequestClass::ALL {
        builder = builder.max_queued(class, cap);
    }
    if let Some(limit) = deadline {
        builder = builder.deadline(limit);
    }
    let engine = builder.build();

    let mut sheds = 0;
    let tickets: Vec<AnyTicket> = ops
        .iter()
        .enumerate()
        .map(|(i, &op)| {
            let (ticket, shed) = submit_with_backoff(&engine, (i % 3) as u64, op);
            sheds += shed;
            ticket
        })
        .collect();

    let admitted = tickets.len() as u64;
    let mut expired = 0u64;
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait_result() {
            Ok(answer) => assert_eq!(
                answer, expected[i],
                "{name}: answered op {i} diverged (cap={cap}, deadline={deadline:?}, fair={fair})"
            ),
            Err(err) if err.is_expired() => {
                assert!(deadline.is_some(), "{name}: expiry without a deadline configured");
                expired += 1;
            }
            Err(other) => panic!("{name}: op {i} failed unexpectedly: {other}"),
        }
    }

    let stats = engine.stats();
    assert_eq!(stats.queries_shed, sheds, "{name}: shed counter must match observed sheds");
    assert_eq!(stats.queries_expired, expired, "{name}: expired counter must match tickets");
    assert_eq!(stats.queries_failed, 0, "{name}: admission knobs must not fail requests");
    assert_eq!(
        stats.queries_served + stats.queries_expired,
        admitted,
        "{name}: every admitted request settles exactly once"
    );
    assert_eq!(
        stats.latency_score.count() + stats.latency_tails.count() + stats.latency_heads.count(),
        admitted,
        "{name}: histograms record exactly the settled requests"
    );
    assert_eq!(
        stats.depth_score + stats.depth_tails + stats.depth_heads,
        0,
        "{name}: queues must drain"
    );
}

/// Raw op tuples: ids stay in range by construction, k up to beyond-table.
fn raw_ops(
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<(u8, usize, usize, usize, usize)>> {
    prop::collection::vec(
        (0u8..5, 0usize..N_ENTITIES, 0usize..N_RELATIONS, 0usize..N_ENTITIES, 0usize..50),
        len,
    )
}

/// Decode raw tuples into a mixed-direction-heavy workload: mostly tail
/// and head rank queries (the traffic the dual-direction scheduler
/// exists for), with the occasional score / top-k sprinkled in.
fn decode_mixed(raw: &[(u8, usize, usize, usize, usize)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, a, b, c, k)| match kind % 8 {
            0..=2 => Op::RankTail { h: a, r: b, t: c },
            3..=5 => Op::RankHead { h: a, r: b, t: c },
            6 => Op::Score { h: a, r: b, t: c },
            _ => {
                if k % 2 == 0 {
                    Op::TopKTails { h: a, r: b, k }
                } else {
                    Op::TopKHeads { r: b, t: c, k }
                }
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// BLM classics: native entity-sharded crew, every thread count — the
    /// range runs well past typical CI core counts, so oversubscribed
    /// crews (workers > cores) exercise the pipeline under preemption.
    #[test]
    fn blm_classics_bit_identical(
        spec_idx in 0usize..4,
        n_threads in 1usize..=16,
        raw in raw_ops(12..30),
    ) {
        let (name, spec) = classics::all().swap_remove(spec_idx);
        let mut rng = SeededRng::new(0xB0 + spec_idx as u64);
        let model = BlmModel::new(spec, Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng));
        assert_serve_matches_reference(Arc::new(model), name, &decode(&raw), n_threads, 64);
    }

    /// Tiny block sizes force many partial batches — including block(1),
    /// the unbatched one-at-a-time dispatch.
    #[test]
    fn block_size_never_shows(
        block in prop::sample::select(vec![1usize, 2, 7, 64]),
        n_threads in 1usize..=4,
        raw in raw_ops(8..20),
    ) {
        let mut rng = SeededRng::new(0xB10C + block as u64);
        let model = BlmModel::new(
            classics::complex(),
            Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng),
        );
        assert_serve_matches_reference(Arc::new(model), "ComplEx", &decode(&raw), n_threads, block);
    }

    /// RotatE reports no native shard scoring, so the crew splits query
    /// rows — the other worker layout, same bit-identity, again up to an
    /// oversubscribed 16 workers. (TransE/TransH grew native shard
    /// overrides, leaving RotatE the shipped model on this path.)
    #[test]
    fn tdm_query_split_crew_bit_identical(
        n_threads in 1usize..=16,
        seed in 0u64..1_000,
        raw in raw_ops(8..20),
    ) {
        let mut rng = SeededRng::new(seed);
        let cfg = TdmConfig { dim: 12, ..Default::default() };
        let model = RotatE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
        assert_serve_matches_reference(Arc::new(model), "RotatE", &decode(&raw), n_threads, 64);
    }

    /// The Gen-Approx MLP: query-network forward + row-restricted GEMM.
    #[test]
    fn nnm_bit_identical(n_threads in 1usize..=6, raw in raw_ops(8..16)) {
        let mut rng = SeededRng::new(0x99);
        let cfg = NnmConfig { dim: 16, epochs: 0, lr: 0.1, l2: 1e-4 };
        let model = GenApprox::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
        assert_serve_matches_reference(Arc::new(model), "GenApprox", &decode(&raw), n_threads, 64);
    }

    /// The latency-aware scheduler, every knob combination: mixed-direction
    /// concurrent clients × linger budgets × split-crew on/off. None of it
    /// may show in any answer (bit-identity), and every ticket must resolve
    /// (no starvation) — the entity-sharded crew layout.
    #[test]
    fn scheduler_knobs_never_show_entity_shards(
        linger_us in prop::sample::select(vec![0u64, 100, 2_000]),
        split in prop::sample::select(vec![true, false]),
        n_threads in 1usize..=12,
        block in prop::sample::select(vec![3usize, 64]),
        raw in raw_ops(12..28),
    ) {
        let mut rng = SeededRng::new(0x5C4ED + linger_us);
        let model = BlmModel::new(
            classics::complex(),
            Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng),
        );
        assert_serve_matches_reference_cfg(
            Arc::new(model),
            "ComplEx/scheduler",
            &decode_mixed(&raw),
            n_threads,
            block,
            Duration::from_micros(linger_us),
            split,
        );
    }

    /// The admission knobs — queue caps from shed-happy to unbounded,
    /// deadline on/off, fair dequeue on/off — may shed or expire requests
    /// but never change an answered byte, and the counters must account
    /// for every submission.
    #[test]
    fn admission_knobs_never_show(
        cap in prop::sample::select(vec![2usize, kg_serve::KgEngineBuilder::DEFAULT_MAX_QUEUED, usize::MAX]),
        deadline_us in prop::sample::select(vec![0u64, 3_000]),
        fair in prop::sample::select(vec![true, false]),
        raw in raw_ops(10..24),
    ) {
        let mut rng = SeededRng::new(0xAD_0115 ^ cap as u64);
        let model = BlmModel::new(
            classics::complex(),
            Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng),
        );
        let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
        assert_admission_never_shows(
            Arc::new(model),
            "ComplEx/admission",
            &decode_mixed(&raw),
            cap,
            deadline,
            fair,
        );
    }

    /// Same knob sweep over a query-split crew (RotatE reports no native
    /// shard scoring), so both sub-crew layouts are exercised.
    #[test]
    fn scheduler_knobs_never_show_query_split(
        linger_us in prop::sample::select(vec![0u64, 500]),
        split in prop::sample::select(vec![true, false]),
        n_threads in 2usize..=5,
        raw in raw_ops(10..22),
    ) {
        let mut rng = SeededRng::new(0x7D1 + linger_us);
        let cfg = TdmConfig { dim: 12, ..Default::default() };
        let model = RotatE::init(N_ENTITIES, N_RELATIONS, cfg, &mut rng);
        assert_serve_matches_reference_cfg(
            Arc::new(model),
            "RotatE/scheduler",
            &decode_mixed(&raw),
            n_threads,
            8,
            Duration::from_micros(linger_us),
            split,
        );
    }
}

/// The constant scorer: every rank is pure tie counting, every top-k is
/// pure id tie-breaking — the all-ties case the deterministic ordering
/// contract exists for.
#[test]
fn constant_scorer_all_ties_is_deterministic() {
    let ops: Vec<Op> = (0..N_ENTITIES)
        .flat_map(|i| {
            [
                Op::RankTail { h: i, r: 1, t: (i * 7) % N_ENTITIES },
                Op::TopKTails { h: i, r: 0, k: 5 },
                Op::TopKHeads { r: 1, t: i, k: N_ENTITIES + 3 },
            ]
        })
        .collect();
    for threads in [1usize, 3, 8] {
        assert_serve_matches_reference(Arc::new(Flat { n: N_ENTITIES }), "Flat", &ops, threads, 16);
    }
}

/// A shared `Arc<dyn BatchScorer + Send + Sync>` model — the
/// object-safety satellite end to end: the same trait object backs the
/// engine and the reference path.
#[test]
fn arc_dyn_model_serves_bit_identically() {
    let mut rng = SeededRng::new(0xA2C);
    let shared: Arc<dyn BatchScorer + Send + Sync> = Arc::new(BlmModel::new(
        classics::simple(),
        Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng),
    ));
    let fi = filter(0xA2C);
    let engine = KgEngine::with_filter(Arc::clone(&shared), fi.clone())
        .threads(4)
        .block(8)
        .policy(KernelPolicy::Exact)
        .build();
    for i in 0..10 {
        let (h, r, t) = (i * 3 % N_ENTITIES, i % N_RELATIONS, (i * 11 + 1) % N_ENTITIES);
        assert_eq!(
            Answer::Rank(engine.rank_tail(h, r, t)),
            reference(&shared, &fi, Op::RankTail { h, r, t })
        );
        assert_eq!(
            Answer::TopK(engine.top_k_heads(r, t, 7)),
            reference(&shared, &fi, Op::TopKHeads { r, t, k: 7 })
        );
    }
}

/// Out-of-range entity ids are rejected at submission, on the caller's
/// thread, instead of poisoning the crew.
#[test]
#[should_panic(expected = "out of range")]
fn out_of_range_entity_is_rejected_at_submit() {
    let engine = KgEngine::with_filter(Flat { n: N_ENTITIES }, FilterIndex::default()).build();
    let _ = engine.rank_tail(N_ENTITIES, 0, 0);
}

/// `builder` learns the relation vocabulary from the graph, so a bad
/// relation id is likewise a caller-side panic, not an engine poisoning.
#[test]
#[should_panic(expected = "relation id")]
fn out_of_range_relation_is_rejected_when_bound_known() {
    let graph = kg_core::Dataset::with_vocab(
        "toy",
        N_ENTITIES,
        N_RELATIONS,
        vec![Triple::new(0, 0, 1)],
        vec![],
        vec![],
    );
    let engine = KgEngine::builder(Flat { n: N_ENTITIES }, &graph).build();
    let _ = engine.top_k_tails(0, N_RELATIONS, 3);
}

//! Serving from a memory-mapped model image: a [`KgEngine`] built over an
//! [`ImageBlmModel`] must answer every request — score, filtered rank,
//! top-k — bit-identically to an engine serving the in-memory source
//! model. The image path changes where the embeddings live (a read-only
//! file mapping), never what any query computes.

use kg_core::{Dataset, Triple};
use kg_linalg::SeededRng;
use kg_models::{classics, write_model_image, BlmModel, Embeddings, ImageBlmModel, KernelPolicy};
use kg_serve::KgEngine;

const N_ENTITIES: usize = 36;
const N_RELATIONS: usize = 3;

fn graph(rng: &mut SeededRng) -> Dataset {
    let mut tr = |_| {
        Triple::new(
            rng.below(N_ENTITIES) as u32,
            rng.below(N_RELATIONS) as u32,
            rng.below(N_ENTITIES) as u32,
        )
    };
    let train: Vec<Triple> = (0..40).map(&mut tr).collect();
    let valid: Vec<Triple> = (0..6).map(&mut tr).collect();
    let test: Vec<Triple> = (0..6).map(&mut tr).collect();
    Dataset::with_vocab("image-serve", N_ENTITIES, N_RELATIONS, train, valid, test)
}

#[test]
fn image_backed_engine_answers_bit_identically() {
    let mut rng = SeededRng::new(4242);
    let model =
        BlmModel::new(classics::simple(), Embeddings::init(N_ENTITIES, N_RELATIONS, 16, &mut rng));
    let ds = graph(&mut rng);

    let path = std::env::temp_dir().join(format!("kg-serve-image-{}.kgt", std::process::id()));
    write_model_image(&model, &path).expect("write image");
    let image_model = ImageBlmModel::open(&path).expect("map image");

    // Pinned to Exact: the in-memory and image-backed engines must agree
    // bit for bit, which only the exact tier guarantees.
    let direct =
        KgEngine::builder(model, &ds).threads(2).block(16).policy(KernelPolicy::Exact).build();
    let mapped =
        KgEngine::builder(image_model, &ds).threads(3).block(8).policy(KernelPolicy::Exact).build();

    for t in ds.test.iter().chain(ds.valid.iter()) {
        let (h, r, tt) = (t.h.idx(), t.r.idx(), t.t.idx());
        assert_eq!(direct.score(h, r, tt).to_bits(), mapped.score(h, r, tt).to_bits());
        assert_eq!(direct.rank_tail(h, r, tt).to_bits(), mapped.rank_tail(h, r, tt).to_bits());
        assert_eq!(direct.rank_head(h, r, tt).to_bits(), mapped.rank_head(h, r, tt).to_bits());
        assert_eq!(direct.top_k_tails(h, r, 5), mapped.top_k_tails(h, r, 5));
        assert_eq!(direct.top_k_heads(r, tt, 5), mapped.top_k_heads(r, tt, 5));
    }

    std::fs::remove_file(&path).ok();
}

//! The versioned, checksummed, zero-copy model image format.
//!
//! An image is a single file: a small self-describing header followed by
//! 64-byte-aligned raw segments. A serving process `mmap`s the file and
//! reads every table *in place* — no deserialisation, no per-row
//! allocation, multi-GiB tables ready in the time it takes to validate a
//! header. The byte-level layout is documented in the [`crate`] docs;
//! the short version:
//!
//! ```text
//! [0..8)    magic  b"KGTBLIM1"
//! [8..12)   version u32 (little-endian, currently 1)
//! [12..16)  n_segments u32
//! [16..24)  payload checksum u64 (FNV-1a 64 over [payload_base..EOF))
//! [24..24+24n)  directory: {id u32, dtype u32, offset u64, len u64} × n
//! [..+8)    header checksum u64 (FNV-1a 64 over every header byte above)
//! ...       zero padding to the next 64-byte boundary = payload_base
//! ...       segments, each starting at offset % 64 == 0
//! ```
//!
//! All multi-byte fields are little-endian; typed accessors reinterpret
//! segment bytes in place, so the format is declared little-endian-only
//! and [`Image::open`] refuses to run on a big-endian host rather than
//! silently mis-reading.
//!
//! **Validation happens at open, on the caller's thread.** [`Image::open`]
//! checks magic, version, header checksum, and for every directory entry
//! the 64-byte alignment and that `offset + len` lies inside the file —
//! so once an [`Image`] exists, every accessor is infallible-by-shape and
//! workers can never trip over a malformed file. Opening is O(header):
//! the *payload* checksum is verified only by the opt-in [`Image::verify`]
//! (a full sequential read), keeping the instant-restart property.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Magic bytes at offset 0 of every image file.
pub const MAGIC: [u8; 8] = *b"KGTBLIM1";

/// Current format version.
pub const VERSION: u32 = 1;

/// Segment payloads start on multiples of this (and the mapping base is
/// at least this aligned), so every typed accessor's cast is aligned.
pub const SEGMENT_ALIGN: usize = 64;

/// Element types a segment can declare. The discriminant is the on-disk
/// `dtype` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum DType {
    /// Raw bytes (also the type for serialised JSON metadata).
    U8 = 1,
    /// Quantised codes.
    I8 = 2,
    /// Embedding tables.
    F32 = 3,
    /// Integer L1 norms.
    U32 = 4,
    /// Meta words.
    U64 = 5,
}

impl DType {
    /// Element size in bytes.
    pub fn elem_size(self) -> usize {
        match self {
            DType::U8 | DType::I8 => 1,
            DType::F32 | DType::U32 => 4,
            DType::U64 => 8,
        }
    }

    fn from_u32(raw: u32) -> Option<DType> {
        match raw {
            1 => Some(DType::U8),
            2 => Some(DType::I8),
            3 => Some(DType::F32),
            4 => Some(DType::U32),
            5 => Some(DType::U64),
            _ => None,
        }
    }
}

/// One directory entry: a typed byte range inside the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDesc {
    /// Caller-defined segment id (the model schema lives one level up, in
    /// `kg-models`).
    pub id: u32,
    /// Element type.
    pub dtype: DType,
    /// Absolute byte offset (multiple of [`SEGMENT_ALIGN`]).
    pub offset: u64,
    /// Byte length (multiple of the element size).
    pub len: u64,
}

/// Typed failure of image parsing or access — every malformed input is a
/// variant here, never a panic, and always raised on the caller's thread.
#[derive(Debug)]
pub enum ImageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// File shorter than the fixed header prefix.
    TooSmall {
        /// Actual file length.
        len: u64,
    },
    /// Magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version the file declared.
        found: u32,
    },
    /// Header bytes do not match their checksum (corrupt or truncated
    /// header/directory).
    HeaderChecksum,
    /// Payload bytes do not match the recorded payload checksum
    /// (detected by [`Image::verify`]).
    PayloadChecksum,
    /// A directory entry's `offset + len` exceeds the file.
    Truncated {
        /// Segment id.
        id: u32,
        /// Exclusive end offset the entry claims.
        end: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// A directory entry's offset is not [`SEGMENT_ALIGN`]-aligned.
    Misaligned {
        /// Segment id.
        id: u32,
        /// The unaligned offset.
        offset: u64,
    },
    /// A directory entry declares an unknown dtype, or its byte length is
    /// not a multiple of the element size.
    BadSegment {
        /// Segment id.
        id: u32,
    },
    /// A typed accessor asked for a different dtype than the entry holds.
    WrongDType {
        /// Segment id.
        id: u32,
        /// The dtype the accessor expected.
        expected: DType,
        /// The dtype the directory records.
        found: DType,
    },
    /// No directory entry carries the requested id.
    MissingSegment {
        /// The id looked up.
        id: u32,
    },
    /// Model-level schema validation failed (wrong shapes, undecodable
    /// spec, …) — produced by image consumers such as `kg-models`.
    Schema(String),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Io(e) => write!(f, "image i/o error: {e}"),
            ImageError::TooSmall { len } => {
                write!(f, "image too small to hold a header ({len} bytes)")
            }
            ImageError::BadMagic => write!(f, "not a model image (bad magic)"),
            ImageError::BadVersion { found } => {
                write!(f, "unsupported image version {found} (supported: {VERSION})")
            }
            ImageError::HeaderChecksum => write!(f, "image header checksum mismatch"),
            ImageError::PayloadChecksum => write!(f, "image payload checksum mismatch"),
            ImageError::Truncated { id, end, file_len } => write!(
                f,
                "segment {id} ends at byte {end} but the file is {file_len} bytes (truncated?)"
            ),
            ImageError::Misaligned { id, offset } => {
                write!(f, "segment {id} offset {offset} is not {SEGMENT_ALIGN}-byte aligned")
            }
            ImageError::BadSegment { id } => {
                write!(f, "segment {id} has an unknown dtype or a ragged byte length")
            }
            ImageError::WrongDType { id, expected, found } => {
                write!(f, "segment {id} holds {found:?}, accessor expected {expected:?}")
            }
            ImageError::MissingSegment { id } => write!(f, "image has no segment with id {id}"),
            ImageError::Schema(msg) => write!(f, "image schema error: {msg}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ImageError {
    fn from(e: io::Error) -> Self {
        ImageError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for corruption
/// detection (this is an integrity check, not an authenticity one).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FIXED_HEADER: usize = 24; // magic + version + n_segments + payload checksum
const DIR_ENTRY: usize = 24; // id + dtype + offset + len

fn header_len(n_segments: usize) -> usize {
    FIXED_HEADER + n_segments * DIR_ENTRY + 8 // + header checksum
}

fn payload_base(n_segments: usize) -> usize {
    header_len(n_segments).div_ceil(SEGMENT_ALIGN) * SEGMENT_ALIGN
}

// ---------------------------------------------------------------------
// The mapping: mmap on 64-bit unix, an aligned owned buffer elsewhere
// (and for `from_bytes`).

enum Mapping {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap {
        ptr: *const u8,
        len: usize,
    },
    Owned {
        ptr: *mut u8,
        len: usize,
    },
}

// SAFETY: the mapping is read-only for its whole lifetime; raw pointers
// to immutable bytes are as shareable as a `&[u8]`.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len came from a successful mmap of exactly len
            // bytes, unmapped only in Drop.
            Mapping::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            // SAFETY: ptr/len came from a successful 64-aligned alloc of
            // exactly len bytes, freed only in Drop.
            Mapping::Owned { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Copy `bytes` into a fresh [`SEGMENT_ALIGN`]-aligned allocation, so
    /// typed accessors see the same alignment guarantees as an mmap
    /// (whose base is page-aligned).
    fn owned_from(bytes: &[u8]) -> Mapping {
        let len = bytes.len();
        let layout = std::alloc::Layout::from_size_align(len.max(1), SEGMENT_ALIGN)
            .expect("image: invalid layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        // SAFETY: ptr points at len.max(1) ≥ len writable bytes.
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), ptr, len) };
        Mapping::Owned { ptr, len }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Mapping::Mmap { ptr, len } => {
                // SAFETY: exactly the region mmap returned.
                unsafe { sys::munmap((*ptr).cast_mut().cast(), *len) };
            }
            Mapping::Owned { ptr, len } => {
                let layout =
                    std::alloc::Layout::from_size_align((*len).max(1), SEGMENT_ALIGN).unwrap();
                // SAFETY: exactly the allocation owned_from made.
                unsafe { std::alloc::dealloc(*ptr, layout) };
            }
        }
    }
}

/// Raw mmap FFI — declared here instead of pulling in a crate: Rust
/// programs on unix already link libc, and the two calls we need have had
/// a stable ABI for decades. 64-bit targets only (`off_t = i64`).
#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(ptr: *mut c_void) -> bool {
        ptr as isize == -1
    }
}

// ---------------------------------------------------------------------
// Reader.

/// A validated, read-only model image. All accessors return slices that
/// borrow the underlying mapping — zero-copy by construction.
pub struct Image {
    map: Mapping,
    dir: Vec<SegmentDesc>,
    payload_checksum: u64,
    payload_base: usize,
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Image")
            .field("len", &self.map.as_slice().len())
            .field("segments", &self.dir)
            .finish()
    }
}

impl Image {
    /// Memory-map and validate an image file. O(header): magic, version,
    /// header checksum and every directory entry's bounds/alignment are
    /// checked; payload bytes are *not* read (see [`Image::verify`]).
    pub fn open(path: &Path) -> Result<Image, ImageError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            if file_len == 0 {
                return Err(ImageError::TooSmall { len: 0 });
            }
            let len = file_len as usize;
            // SAFETY: fd is a valid open file; we map len bytes read-only
            // and privately; the pointer is checked before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if sys::map_failed(ptr) {
                return Err(ImageError::Io(io::Error::last_os_error()));
            }
            let map = Mapping::Mmap { ptr: ptr.cast_const().cast(), len };
            Image::from_mapping(map)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(file_len as usize);
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Image::from_bytes(&bytes)
        }
    }

    /// Validate an in-memory image (copied into an aligned buffer) — the
    /// non-mmap path, also handy for tests.
    pub fn from_bytes(bytes: &[u8]) -> Result<Image, ImageError> {
        Image::from_mapping(Mapping::owned_from(bytes))
    }

    fn from_mapping(map: Mapping) -> Result<Image, ImageError> {
        if cfg!(target_endian = "big") {
            return Err(ImageError::Schema(
                "model images are little-endian; big-endian hosts are unsupported".into(),
            ));
        }
        let bytes = map.as_slice();
        if bytes.len() < FIXED_HEADER + 8 {
            return Err(ImageError::TooSmall { len: bytes.len() as u64 });
        }
        if bytes[0..8] != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(ImageError::BadVersion { found: version });
        }
        let n_segments = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let header_len = header_len(n_segments);
        let base = payload_base(n_segments);
        if bytes.len() < base {
            return Err(ImageError::TooSmall { len: bytes.len() as u64 });
        }
        let recorded = u64::from_le_bytes(bytes[header_len - 8..header_len].try_into().unwrap());
        if fnv1a64(&bytes[..header_len - 8]) != recorded {
            return Err(ImageError::HeaderChecksum);
        }
        let payload_checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let mut dir = Vec::with_capacity(n_segments);
        for s in 0..n_segments {
            let e = FIXED_HEADER + s * DIR_ENTRY;
            let id = u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap());
            let raw_dtype = u32::from_le_bytes(bytes[e + 4..e + 8].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap());
            let dtype = DType::from_u32(raw_dtype).ok_or(ImageError::BadSegment { id })?;
            if len % dtype.elem_size() as u64 != 0 {
                return Err(ImageError::BadSegment { id });
            }
            if offset % SEGMENT_ALIGN as u64 != 0 {
                return Err(ImageError::Misaligned { id, offset });
            }
            let end = offset.checked_add(len).ok_or(ImageError::BadSegment { id })?;
            if end > bytes.len() as u64 || offset < base as u64 {
                return Err(ImageError::Truncated { id, end, file_len: bytes.len() as u64 });
            }
            dir.push(SegmentDesc { id, dtype, offset, len });
        }
        Ok(Image { map, dir, payload_checksum, payload_base: base })
    }

    /// Re-hash every payload byte against the recorded checksum — the
    /// opt-in deep integrity check (a full sequential read of the file;
    /// [`Image::open`] deliberately skips it to stay O(header)).
    pub fn verify(&self) -> Result<(), ImageError> {
        let bytes = self.map.as_slice();
        if fnv1a64(&bytes[self.payload_base..]) != self.payload_checksum {
            return Err(ImageError::PayloadChecksum);
        }
        Ok(())
    }

    /// The directory, in file order.
    pub fn segments(&self) -> &[SegmentDesc] {
        &self.dir
    }

    /// Total image size in bytes.
    pub fn len(&self) -> usize {
        self.map.as_slice().len()
    }

    /// Whether the image holds no bytes (never true for a valid image).
    pub fn is_empty(&self) -> bool {
        self.map.as_slice().is_empty()
    }

    fn find(&self, id: u32) -> Result<&SegmentDesc, ImageError> {
        self.dir.iter().find(|s| s.id == id).ok_or(ImageError::MissingSegment { id })
    }

    fn typed<T>(&self, id: u32, expected: DType) -> Result<&[T], ImageError> {
        let seg = self.find(id)?;
        if seg.dtype != expected {
            return Err(ImageError::WrongDType { id, expected, found: seg.dtype });
        }
        let bytes = &self.map.as_slice()[seg.offset as usize..(seg.offset + seg.len) as usize];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: the range was bounds-checked at open; the base pointer
        // is SEGMENT_ALIGN-aligned (mmap page alignment or the owned
        // buffer's explicit alignment) and offsets are SEGMENT_ALIGN
        // multiples, so the cast pointer is aligned for every supported
        // T; len is a multiple of the element size (checked at open);
        // all supported T are plain-old-data valid for any bit pattern.
        Ok(unsafe {
            std::slice::from_raw_parts(
                bytes.as_ptr().cast::<T>(),
                bytes.len() / std::mem::size_of::<T>(),
            )
        })
    }

    /// Raw bytes of segment `id` (dtype [`DType::U8`]).
    pub fn bytes(&self, id: u32) -> Result<&[u8], ImageError> {
        self.typed::<u8>(id, DType::U8)
    }

    /// i8 view of segment `id` (dtype [`DType::I8`]).
    pub fn i8s(&self, id: u32) -> Result<&[i8], ImageError> {
        self.typed::<i8>(id, DType::I8)
    }

    /// f32 view of segment `id` (dtype [`DType::F32`]).
    pub fn f32s(&self, id: u32) -> Result<&[f32], ImageError> {
        self.typed::<f32>(id, DType::F32)
    }

    /// u32 view of segment `id` (dtype [`DType::U32`]).
    pub fn u32s(&self, id: u32) -> Result<&[u32], ImageError> {
        self.typed::<u32>(id, DType::U32)
    }

    /// u64 view of segment `id` (dtype [`DType::U64`]).
    pub fn u64s(&self, id: u32) -> Result<&[u64], ImageError> {
        self.typed::<u64>(id, DType::U64)
    }
}

// ---------------------------------------------------------------------
// Writer.

/// Builds an image in memory, then serialises the header, the aligned
/// segments and the checksums in one pass. Segment ids are the caller's
/// namespace; the writer only enforces the layout invariants the reader
/// checks.
#[derive(Default)]
pub struct ImageWriter {
    segments: Vec<(u32, DType, Vec<u8>)>,
}

impl ImageWriter {
    /// An empty writer.
    pub fn new() -> ImageWriter {
        ImageWriter::default()
    }

    /// Append a raw byte segment.
    pub fn seg_bytes(&mut self, id: u32, data: &[u8]) -> &mut Self {
        self.segments.push((id, DType::U8, data.to_vec()));
        self
    }

    /// Append an i8 segment.
    pub fn seg_i8(&mut self, id: u32, data: &[i8]) -> &mut Self {
        let bytes: Vec<u8> = data.iter().map(|&v| v as u8).collect();
        self.segments.push((id, DType::I8, bytes));
        self
    }

    /// Append an f32 segment (little-endian).
    pub fn seg_f32(&mut self, id: u32, data: &[f32]) -> &mut Self {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.segments.push((id, DType::F32, bytes));
        self
    }

    /// Append a u32 segment (little-endian).
    pub fn seg_u32(&mut self, id: u32, data: &[u32]) -> &mut Self {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.segments.push((id, DType::U32, bytes));
        self
    }

    /// Append a u64 segment (little-endian).
    pub fn seg_u64(&mut self, id: u32, data: &[u64]) -> &mut Self {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.segments.push((id, DType::U64, bytes));
        self
    }

    /// Serialise the full image to bytes (header, directory, checksums,
    /// zero padding, segments).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.segments.len();
        let base = payload_base(n);
        // Lay out payload offsets first.
        let mut offsets = Vec::with_capacity(n);
        let mut cursor = base as u64;
        for (_, _, data) in &self.segments {
            offsets.push(cursor);
            cursor += data.len() as u64;
            cursor = cursor.div_ceil(SEGMENT_ALIGN as u64) * SEGMENT_ALIGN as u64;
        }
        let total = match self.segments.last() {
            // The final segment needs no trailing padding.
            Some((_, _, data)) => (offsets[n - 1] + data.len() as u64) as usize,
            None => base,
        };
        let mut out = vec![0u8; total];
        for (i, (_, _, data)) in self.segments.iter().enumerate() {
            out[offsets[i] as usize..offsets[i] as usize + data.len()].copy_from_slice(data);
        }
        let payload_checksum = fnv1a64(&out[base..]);
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&(n as u32).to_le_bytes());
        out[16..24].copy_from_slice(&payload_checksum.to_le_bytes());
        for (i, (id, dtype, data)) in self.segments.iter().enumerate() {
            let e = FIXED_HEADER + i * DIR_ENTRY;
            out[e..e + 4].copy_from_slice(&id.to_le_bytes());
            out[e + 4..e + 8].copy_from_slice(&(*dtype as u32).to_le_bytes());
            out[e + 8..e + 16].copy_from_slice(&offsets[i].to_le_bytes());
            out[e + 16..e + 24].copy_from_slice(&(data.len() as u64).to_le_bytes());
        }
        let hlen = header_len(n);
        let header_checksum = fnv1a64(&out[..hlen - 8]);
        out[hlen - 8..hlen].copy_from_slice(&header_checksum.to_le_bytes());
        out
    }

    /// Write the image to `path` (create/truncate).
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let bytes = self.to_bytes();
        let mut f = File::create(path)?;
        f.write_all(&bytes)?;
        f.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ImageWriter {
        let mut w = ImageWriter::new();
        w.seg_f32(1, &[1.0, -2.5, 0.0, f32::MAX])
            .seg_i8(2, &[-127, 0, 127])
            .seg_u32(3, &[7, 8, 9])
            .seg_u64(4, &[42])
            .seg_bytes(5, b"{\"spec\":true}");
        w
    }

    #[test]
    fn round_trips_through_bytes() {
        let bytes = sample().to_bytes();
        let img = Image::from_bytes(&bytes).expect("valid image");
        assert_eq!(img.f32s(1).unwrap(), &[1.0, -2.5, 0.0, f32::MAX]);
        assert_eq!(img.i8s(2).unwrap(), &[-127, 0, 127]);
        assert_eq!(img.u32s(3).unwrap(), &[7, 8, 9]);
        assert_eq!(img.u64s(4).unwrap(), &[42]);
        assert_eq!(img.bytes(5).unwrap(), b"{\"spec\":true}");
        img.verify().expect("payload intact");
        for seg in img.segments() {
            assert_eq!(seg.offset % SEGMENT_ALIGN as u64, 0, "segment {} unaligned", seg.id);
        }
    }

    #[test]
    fn round_trips_through_a_file() {
        let path = std::env::temp_dir().join(format!("kg-table-img-{}.kgi", std::process::id()));
        sample().write_to(&path).expect("write");
        let img = Image::open(&path).expect("open");
        assert_eq!(img.f32s(1).unwrap()[3], f32::MAX);
        img.verify().expect("payload intact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_access_errors_are_typed() {
        let bytes = sample().to_bytes();
        let img = Image::from_bytes(&bytes).unwrap();
        assert!(matches!(img.f32s(2), Err(ImageError::WrongDType { id: 2, .. })));
        assert!(matches!(img.bytes(99), Err(ImageError::MissingSegment { id: 99 })));
    }

    #[test]
    fn empty_image_is_valid() {
        let bytes = ImageWriter::new().to_bytes();
        let img = Image::from_bytes(&bytes).expect("empty image parses");
        assert!(img.segments().is_empty());
        img.verify().expect("empty payload checksums");
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let good = sample().to_bytes();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(Image::from_bytes(&bad), Err(ImageError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 9; // version
        assert!(matches!(Image::from_bytes(&bad), Err(ImageError::BadVersion { found: 9 })));

        // Any header byte flip must trip the header checksum.
        let mut bad = good.clone();
        bad[FIXED_HEADER + 9] ^= 0x01; // a directory offset byte
        assert!(matches!(Image::from_bytes(&bad), Err(ImageError::HeaderChecksum)));

        // Truncation below the header: TooSmall.
        assert!(matches!(Image::from_bytes(&good[..10]), Err(ImageError::TooSmall { .. })));

        // Truncation inside the payload: a segment sticks out past EOF.
        let cut = good.len() - 8;
        assert!(matches!(Image::from_bytes(&good[..cut]), Err(ImageError::Truncated { .. })));

        // Payload byte flip: opens fine (O(header)), verify() catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        let img = Image::from_bytes(&bad).expect("payload corruption is invisible to open");
        assert!(matches!(img.verify(), Err(ImageError::PayloadChecksum)));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

//! Entity-table tiers for million-entity scale: an i8 quantised coarse
//! mirror of the f32 entity table ([`quant`]) and a zero-copy
//! memory-mapped model image ([`image`]).
//!
//! Everything below this crate streams full f32 rows; at the 1M–100M
//! entity scale the ROADMAP targets, that blows past RAM bandwidth (and a
//! serialised model takes minutes just to load). The two tiers here are
//! the fix: a 4×-smaller coarse table that *selects* candidates, an exact
//! f32 rescore that *answers* through the existing bit-identical kernels,
//! and an on-disk image a server maps straight into its address space.
//!
//! # The two-stage certification argument
//!
//! The two-stage ranker (in `kg-eval`) answers a query `q` in two passes:
//! a coarse pass scores **all** entities through the i8 tier and keeps
//! the top-C candidates; the exact pass rescores only the candidates
//! (plus the query's own target) with the same f32 dot products the
//! reference `evaluate_sequential` uses. Ranks and top-k sets computed
//! from the candidates are therefore **exactly** the reference answer
//! whenever the entities that matter — every non-excluded entity whose
//! exact score ties or beats the target's, or the true top-k — land in
//! the candidate set. Two-stage answers are *approximate only when the
//! coarse pass misses a winner*, and that event is both measurable
//! (recall@C, reported by the equivalence suite and the bench) and, per
//! query, often *certifiable*:
//!
//! For table row `x` quantised as `x ≈ s_e·x̂` (per-element error
//! `|x_j − s_e·x̂_j| ≤ s_e·ε` with `ε = 0.50002`, see
//! [`quant::quantise_row_into`]) and the query quantised the same way
//! (`q ≈ s_q·q̂`), expanding `⟨x, q⟩` gives
//!
//! ```text
//! |⟨x, q⟩ − s_e·s_q·⟨x̂, q̂⟩| ≤ s_e·s_q·(ε‖x̂‖₁ + ε‖q̂‖₁ + d·ε²)
//! ```
//!
//! and the f32-computed exact score adds at most the classic dot-product
//! rounding term `d·2⁻²³ · max_j|q_j| · Σ_j|x_j|`. Both pieces are
//! computable exactly from stored quantities — the integer dot
//! `⟨x̂, q̂⟩` is exact ([`kg_linalg::qgemm`]), `‖x̂‖₁` is stored per row
//! as a `u32`, and all arithmetic is f64 over exactly-converted inputs
//! with an explicit slop factor ([`quant::CertCoeffs`]). So every entity
//! `e` has a sound upper bound `u_e = coarse_e + slack_e` on its
//! f32-exact score. A query's answer is **certified** when every
//! non-candidate's `u_e` is strictly below the target's exact score (for
//! ranking; below the k-th candidate score for top-k): no missed entity
//! could have counted, so the two-stage answer equals
//! `evaluate_sequential`'s bit for bit. Certification is sufficient, not
//! necessary — uncertified answers are usually still exact, which is what
//! recall@C measures empirically. Rows with NaN/infinite entries cannot
//! be error-bounded by finite codes; they quantise to zero and clear the
//! table's `all_finite` flag, which disables certification (honestly)
//! while leaving ranking functional.
//!
//! The coarse tier deliberately accumulates in **exact i32 integers**
//! rather than f32: associativity makes SIMD-vs-scalar bit-identity free
//! (see [`kg_linalg::qgemm`]) and the bound above needs no
//! accumulation-error term — the scales are applied once, in f64, after
//! the exact integer dot.
//!
//! # The image format (version 1)
//!
//! A model image is one file: a self-describing header plus 64-byte
//! aligned raw segments, all little-endian.
//!
//! ```text
//! offset   size  field
//! 0        8     magic  b"KGTBLIM1"
//! 8        4     version u32 = 1
//! 12       4     n_segments u32
//! 16       8     payload checksum (FNV-1a 64 over [payload_base..EOF))
//! 24       24·n  directory entries:
//!                  +0  id u32      (caller-defined; kg-models fixes ids)
//!                  +4  dtype u32   (1=u8 2=i8 3=f32 4=u32 5=u64)
//!                  +8  offset u64  (absolute, multiple of 64)
//!                  +16 len u64     (bytes, multiple of the element size)
//! 24+24n   8     header checksum (FNV-1a 64 over all bytes above)
//! …        —     zero padding to the next 64-byte boundary
//! …        —     segment payloads, each 64-byte aligned
//! ```
//!
//! [`image::Image::open`] memory-maps the file and validates **the
//! header only** — magic, version, header checksum, and every entry's
//! dtype, alignment and bounds — in O(header) time on the caller's
//! thread, so malformed files are rejected with typed
//! [`image::ImageError`]s before any worker ever touches a byte. Typed
//! accessors then return slices straight into the mapping (the 64-byte
//! offset alignment plus the page-aligned base make every cast aligned):
//! zero-copy, no per-row allocation. The payload checksum is verified by
//! the opt-in [`image::Image::verify`], a full sequential read —
//! deliberately not part of `open`, to keep the instant-restart
//! property for multi-GiB tables.
//!
//! Segment *ids* are the caller's namespace: this crate defines the
//! container, `kg-models` defines the model schema on top of it (which
//! ids hold the entity table, the quantised mirror, the serialised
//! block spec, …) — the same layering as an object file and its linker.

pub mod image;
pub mod quant;

pub use image::{
    DType, Image, ImageError, ImageWriter, SegmentDesc, MAGIC, SEGMENT_ALIGN, VERSION,
};
pub use quant::{
    quantise_query, quantise_row_into, CertCoeffs, QuantTable, QuantView, QuantizedQuery, RowQuant,
    EPS_HALF,
};

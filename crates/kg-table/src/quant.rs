//! The i8 quantised mirror of an f32 entity table — the coarse tier of
//! two-stage ranking.
//!
//! Each f32 row `x` is stored as i8 codes `x̂` with one f32 scale `s` per
//! row, chosen symmetrically: `s = max_j |x_j| / 127`, `x̂_j =
//! round(x_j / s)` clamped to `[-127, 127]`. The approximate (coarse)
//! score of a query `q` against row `x` is then
//! `s_q · s · ⟨q̂, x̂⟩`, with the integer dot computed **exactly** by
//! [`kg_linalg::qgemm`] — the only approximation anywhere in the coarse
//! tier is the quantisation itself, which is what makes the certification
//! bound in the crate docs sound (see [`crate`]).
//!
//! Alongside the codes and the scale, every row stores its exact integer
//! L1 norm `‖x̂‖₁` (a `u32`): the per-row ingredient of that bound, so
//! certification costs a few flops per entity instead of a re-scan.
//!
//! Two row shapes exist: [`QuantTable`] owns its buffers (built from an
//! in-memory f32 table) and [`QuantView`] borrows them — either from a
//! `QuantTable` or zero-copy from the segments of a memory-mapped model
//! image ([`crate::image`]).

use kg_linalg::qgemm;

/// Per-row quantisation result: the scale, the exact integer L1 norm of
/// the codes, and whether the source row was entirely finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowQuant {
    /// Symmetric scale: `row ≈ scale · codes`. Zero for all-zero rows and
    /// for rows with non-finite entries (which quantise to all-zero codes).
    pub scale: f32,
    /// Exact `Σ_j |codes_j|`.
    pub l1: u32,
    /// `false` iff the row contained a NaN or an infinity. A non-finite
    /// row cannot be represented (or error-bounded) by finite codes, so it
    /// quantises to zero and poisons table-level certification instead of
    /// silently producing wrong candidates.
    pub finite: bool,
}

/// Quantise one f32 row into `out` (same length), returning the scale,
/// integer L1 norm and finiteness flag.
///
/// * All-zero rows (signed zeros included) get `scale = 0`, all-zero
///   codes — and round-trip exactly, since the true row *is* zero.
/// * Rows whose `max_abs / 127` underflows to zero (all entries
///   subnormal-tiny) fall back to `scale = max_abs`, codes in
///   `{-1, 0, 1}` — the per-element error bound `|x_j − s·x̂_j| ≤ s/2`
///   still holds.
/// * Non-finite rows get `scale = 0`, zero codes, `finite = false`.
///
/// # Panics
/// Panics when the lengths differ or exceed
/// [`qgemm::I8_DOT_MAX_K`].
pub fn quantise_row_into(row: &[f32], out: &mut [i8]) -> RowQuant {
    assert_eq!(row.len(), out.len(), "quantise_row: length mismatch");
    assert!(
        row.len() <= qgemm::I8_DOT_MAX_K,
        "quantise_row: length {} exceeds exact-i32 bound",
        row.len()
    );
    let finite = row.iter().all(|x| x.is_finite());
    // f32::max ignores NaN operands, so this is the max over the finite
    // entries; infinities force the non-finite branch below anyway.
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if !finite || max_abs == 0.0 {
        out.fill(0);
        return RowQuant { scale: 0.0, l1: 0, finite };
    }
    let mut scale = max_abs / 127.0;
    if scale == 0.0 {
        // max_abs is so small the division underflowed: code ±1 at most.
        scale = max_abs;
    }
    for (o, &x) in out.iter_mut().zip(row.iter()) {
        let c = (x / scale).round() as i32;
        *o = c.clamp(-127, 127) as i8;
    }
    RowQuant { scale, l1: qgemm::l1_i8(out), finite: true }
}

/// A quantised query vector (one row, owned) — what the two-stage ranker
/// scores against a [`QuantView`].
#[derive(Debug, Clone)]
pub struct QuantizedQuery {
    /// i8 codes, same length as the query.
    pub codes: Vec<i8>,
    /// Per-query symmetric scale (see [`quantise_row_into`]).
    pub scale: f32,
    /// Exact `‖codes‖₁`.
    pub l1: u32,
    /// Whether the query was entirely finite.
    pub finite: bool,
}

/// Quantise a query vector with the exact rule used for table rows, so
/// the coarse score `s_q · s_e · ⟨q̂, ê⟩` is symmetric in its error
/// analysis.
pub fn quantise_query(q: &[f32]) -> QuantizedQuery {
    let mut codes = vec![0i8; q.len()];
    let rq = quantise_row_into(q, &mut codes);
    QuantizedQuery { codes, scale: rq.scale, l1: rq.l1, finite: rq.finite }
}

/// Per-query coefficients of the certification slack
/// `slack(e) = s_e · (c1 · ‖ê‖₁ + c0)`: an upper bound (derived in the
/// [`crate`] docs) on how far the f32-computed exact score of entity `e`
/// can sit above its coarse score. Precomputing `c0`/`c1` makes the
/// per-entity bound three flops, cheap enough to fold into the coarse
/// scan itself.
#[derive(Debug, Clone, Copy)]
pub struct CertCoeffs {
    /// Coefficient of the entity-row L1 norm.
    pub c1: f64,
    /// Constant term (carries the query L1 norm and the `d/4` cross term).
    pub c0: f64,
}

/// Per-element quantisation half-step, inflated for the f32 rounding of
/// `x / s` and the ±127 clamp: `|x_j − s·x̂_j| ≤ s · EPS_HALF` in every
/// branch of [`quantise_row_into`]. Public because it is part of the
/// quantiser's *contract*: certification consumers (the two-stage ranker
/// in `kg-eval`) build magnitude bounds like `|q_j| ≤ s_q·(127 + ε)`
/// from it.
pub const EPS_HALF: f64 = 0.50002;

/// Margin multiplier absorbing every f64 rounding in the slack formula
/// itself (each term is a handful of f64 operations, so 2⁻²⁰ of headroom
/// is orders of magnitude more than needed).
const F64_SLOP: f64 = 1.0 + 9.5367431640625e-7; // 1 + 2⁻²⁰

impl QuantizedQuery {
    /// The certification coefficients of this query at dimension `dim`
    /// (see [`CertCoeffs`] and the bound derivation in the [`crate`]
    /// docs). `dim` must equal `codes.len()`.
    pub fn cert_coeffs(&self, dim: usize) -> CertCoeffs {
        assert_eq!(dim, self.codes.len(), "cert_coeffs: dimension mismatch");
        CertCoeffs::new(self.scale, self.l1, dim)
    }
}

impl CertCoeffs {
    /// Compute the coefficients from the query's quantisation summary
    /// alone (scale and integer L1 norm) — what a caller that quantised
    /// into a borrowed buffer (no owned [`QuantizedQuery`]) uses.
    pub fn new(query_scale: f32, query_l1: u32, dim: usize) -> CertCoeffs {
        let d = dim as f64;
        let sq = query_scale as f64;
        let l1q = query_l1 as f64;
        // γ_d bound on the f32 dot's own rounding, with |q_j| ≤
        // s_q · (127 + EPS_HALF) and Σ|x_j| ≤ s_e · (‖ê‖₁ + d·EPS_HALF).
        let gamma = d * f32::EPSILON as f64; // 2⁻²³: twice the unit roundoff
        let qmax = sq * (127.0 + EPS_HALF);
        // slack(e) = s_e · [ (s_q·EPS_HALF + γ·qmax) · ‖ê‖₁
        //                  + s_q·EPS_HALF·‖q̂‖₁ + d·s_q·EPS_HALF²
        //                  + γ·qmax·d·EPS_HALF ]
        let c1 = (sq * EPS_HALF + gamma * qmax) * F64_SLOP;
        let c0 = (sq * EPS_HALF * l1q + d * sq * EPS_HALF * EPS_HALF + gamma * qmax * d * EPS_HALF)
            * F64_SLOP;
        CertCoeffs { c1, c0 }
    }
}

/// Owned i8 mirror of an `n × dim` f32 table: codes, per-row scales and
/// per-row integer L1 norms, plus the table-level [`all_finite`] flag
/// that gates certification.
///
/// [`all_finite`]: QuantTable::all_finite
#[derive(Debug, Clone)]
pub struct QuantTable {
    codes: Vec<i8>,
    scales: Vec<f32>,
    l1: Vec<u32>,
    dim: usize,
    all_finite: bool,
}

impl QuantTable {
    /// Quantise an `n_rows × dim` row-major f32 table.
    ///
    /// # Panics
    /// Panics when `table.len() != n_rows * dim` or `dim` exceeds
    /// [`qgemm::I8_DOT_MAX_K`].
    pub fn from_rows(table: &[f32], n_rows: usize, dim: usize) -> QuantTable {
        assert_eq!(table.len(), n_rows * dim, "QuantTable: table shape mismatch");
        let mut codes = vec![0i8; n_rows * dim];
        let mut scales = vec![0.0f32; n_rows];
        let mut l1 = vec![0u32; n_rows];
        let mut all_finite = true;
        for r in 0..n_rows {
            let rq = quantise_row_into(
                &table[r * dim..(r + 1) * dim],
                &mut codes[r * dim..(r + 1) * dim],
            );
            scales[r] = rq.scale;
            l1[r] = rq.l1;
            all_finite &= rq.finite;
        }
        QuantTable { codes, scales, l1, dim, all_finite }
    }

    /// Quantise a table presented row by row — the shape a factorising
    /// model exposes (`FactorScorer::entity_row` in `kg-models`) when
    /// its storage is not one contiguous slice.
    ///
    /// # Panics
    /// Panics when any row's length differs from `dim` or `dim` exceeds
    /// [`qgemm::I8_DOT_MAX_K`].
    pub fn from_row_iter<'a, I>(rows: I, dim: usize) -> QuantTable
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut codes = Vec::new();
        let mut scales = Vec::new();
        let mut l1 = Vec::new();
        let mut all_finite = true;
        let mut buf = vec![0i8; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "QuantTable: row length mismatch");
            let rq = quantise_row_into(row, &mut buf);
            codes.extend_from_slice(&buf);
            scales.push(rq.scale);
            l1.push(rq.l1);
            all_finite &= rq.finite;
        }
        QuantTable { codes, scales, l1, dim, all_finite }
    }

    /// Borrow the table as a [`QuantView`].
    pub fn view(&self) -> QuantView<'_> {
        QuantView {
            codes: &self.codes,
            scales: &self.scales,
            l1: &self.l1,
            dim: self.dim,
            all_finite: self.all_finite,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.scales.len()
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether every source row was finite — the precondition for
    /// certified two-stage answers (see the [`crate`] docs).
    pub fn all_finite(&self) -> bool {
        self.all_finite
    }
}

/// Borrowed view of a quantised table: the shape the i8 kernels and the
/// two-stage ranker consume. Constructed from an owned [`QuantTable`] or
/// zero-copy from the validated segments of a model image.
#[derive(Debug, Clone, Copy)]
pub struct QuantView<'a> {
    codes: &'a [i8],
    scales: &'a [f32],
    l1: &'a [u32],
    dim: usize,
    all_finite: bool,
}

impl<'a> QuantView<'a> {
    /// Assemble a view from raw parts (the image-backed path — segment
    /// lengths were validated by the image reader, these asserts are the
    /// cheap second line of defence).
    ///
    /// # Panics
    /// Panics when the slice lengths disagree with `n_rows` and `dim`.
    pub fn from_parts(
        codes: &'a [i8],
        scales: &'a [f32],
        l1: &'a [u32],
        n_rows: usize,
        dim: usize,
        all_finite: bool,
    ) -> QuantView<'a> {
        assert_eq!(codes.len(), n_rows * dim, "QuantView: codes shape mismatch");
        assert_eq!(scales.len(), n_rows, "QuantView: scales shape mismatch");
        assert_eq!(l1.len(), n_rows, "QuantView: l1 shape mismatch");
        assert!(dim <= qgemm::I8_DOT_MAX_K, "QuantView: dimension {dim} exceeds exact-i32 bound");
        QuantView { codes, scales, l1, dim, all_finite }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.scales.len()
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether every source row was finite (certification gate).
    pub fn all_finite(&self) -> bool {
        self.all_finite
    }

    /// The full `n_rows · dim` code buffer (row-major).
    pub fn codes(&self) -> &'a [i8] {
        self.codes
    }

    /// Per-row scales.
    pub fn scales(&self) -> &'a [f32] {
        self.scales
    }

    /// Per-row exact integer L1 norms.
    pub fn l1_norms(&self) -> &'a [u32] {
        self.l1
    }

    /// Codes of row `r`.
    pub fn row_codes(&self, r: usize) -> &'a [i8] {
        &self.codes[r * self.dim..(r + 1) * self.dim]
    }

    /// Coarse (approximate) score of a quantised query against row `r`:
    /// `s_q · s_r · ⟨q̂, r̂⟩`, with the integer dot exact and the scaling
    /// done in f64 — so the result is deterministic, monotone in the
    /// integer dot for fixed scales, and immune to the `inf · 0` NaN that
    /// a pure-f32 scaling could produce on extreme-magnitude rows.
    pub fn coarse_score(&self, q: &QuantizedQuery, r: usize) -> f64 {
        let i = qgemm::dot_i8(&q.codes, self.row_codes(r));
        (q.scale as f64 * self.scales[r] as f64) * i as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rows_quantise_exactly() {
        let mut out = [1i8; 4];
        let rq = quantise_row_into(&[0.0, -0.0, 0.0, -0.0], &mut out);
        assert_eq!(rq, RowQuant { scale: 0.0, l1: 0, finite: true });
        assert_eq!(out, [0; 4]);
    }

    #[test]
    fn nonfinite_rows_are_flagged_and_zeroed() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut out = [7i8; 3];
            let rq = quantise_row_into(&[1.0, bad, -2.0], &mut out);
            assert!(!rq.finite);
            assert_eq!(rq.scale, 0.0);
            assert_eq!(out, [0; 3]);
        }
    }

    #[test]
    fn max_magnitude_element_maps_to_saturation() {
        let mut out = [0i8; 3];
        let rq = quantise_row_into(&[0.5, -2.0, 1.0], &mut out);
        assert_eq!(out[1], -127);
        assert_eq!(rq.scale, 2.0 / 127.0);
        assert_eq!(rq.l1, out.iter().map(|&c| (c as i32).unsigned_abs()).sum::<u32>());
    }

    #[test]
    fn extreme_magnitudes_do_not_overflow_the_scale() {
        let mut out = [0i8; 2];
        let rq = quantise_row_into(&[f32::MAX, -f32::MAX], &mut out);
        assert!(rq.scale.is_finite());
        assert_eq!(out, [127, -127]);
    }

    #[test]
    fn subnormal_rows_fall_back_to_unit_codes() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        let mut out = [0i8; 2];
        let rq = quantise_row_into(&[tiny, -tiny], &mut out);
        assert!(rq.scale > 0.0);
        assert_eq!(out, [1, -1]);
        // Round-trip bound holds in the fallback branch too.
        for (&c, &x) in out.iter().zip([tiny, -tiny].iter()) {
            let err = (x as f64 - rq.scale as f64 * c as f64).abs();
            assert!(err <= rq.scale as f64 * EPS_HALF);
        }
    }

    #[test]
    fn table_aggregates_finiteness() {
        let t = QuantTable::from_rows(&[1.0, 2.0, f32::NAN, 0.0], 2, 2);
        assert!(!t.all_finite());
        assert_eq!(t.view().n_rows(), 2);
        let clean = QuantTable::from_rows(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        assert!(clean.all_finite());
        // Row 1 max is 4.0 → scale 4/127, codes round(127·x/4).
        assert_eq!(clean.view().row_codes(1), &[95, 127]);
    }

    #[test]
    fn coarse_score_tracks_the_true_dot() {
        let row = [0.25f32, -1.5, 3.0, 0.0];
        let q = [1.0f32, 2.0, -0.5, 4.0];
        let t = QuantTable::from_rows(&row, 1, 4);
        let qq = quantise_query(&q);
        let coarse = t.view().coarse_score(&qq, 0);
        let truth: f64 = row.iter().zip(q.iter()).map(|(&x, &y)| x as f64 * y as f64).sum();
        // The certification slack bounds the gap.
        let cc = qq.cert_coeffs(4);
        let slack = t.view().scales()[0] as f64 * (cc.c1 * t.view().l1_norms()[0] as f64 + cc.c0);
        assert!((coarse - truth).abs() <= slack, "coarse {coarse} truth {truth} slack {slack}");
    }

    #[test]
    fn view_from_parts_round_trips() {
        let t = QuantTable::from_rows(&[1.0, -2.0, 0.5, 8.0, 0.0, -0.25], 2, 3);
        let v = t.view();
        let rebuilt =
            QuantView::from_parts(v.codes(), v.scales(), v.l1_norms(), 2, 3, v.all_finite());
        assert_eq!(rebuilt.row_codes(1), v.row_codes(1));
        assert_eq!(rebuilt.scales(), v.scales());
    }
}

//! Property-based coverage for the per-row symmetric quantiser: the
//! round-trip error bound that the certification argument leans on, the
//! awkward payloads (±0.0, extreme magnitudes, all-equal rows, the
//! scale-0 edge), and the exactness of the stored L1 norms. The
//! SIMD-vs-scalar bit-identity of the i8 *kernels* over ragged lengths
//! lives next to the kernels, in `kg-linalg/tests/proptests.rs`.

use kg_table::quant::{quantise_query, quantise_row_into, QuantTable};
use proptest::prelude::*;

/// The per-element bound every branch of the quantiser guarantees (see
/// `EPS_HALF` in the implementation).
const EPS_HALF: f64 = 0.50002;

/// Rows mixing ordinary values with ±0.0 and extreme magnitudes —
/// everything finite, since non-finite rows are a separate (flagged)
/// branch.
fn finite_rows(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((0u32..8, -100.0f32..100.0), n).prop_map(|raw| {
        raw.into_iter()
            .map(|(code, v)| match code {
                0 => 0.0,
                1 => -0.0,
                2 => f32::MAX,
                3 => -f32::MAX,
                4 => f32::MIN_POSITIVE / 2.0, // subnormal
                5 => 1e-30,
                _ => v,
            })
            .collect()
    })
}

fn check_row_contract(row: &[f32]) -> Result<(), TestCaseError> {
    let mut codes = vec![0i8; row.len()];
    let rq = quantise_row_into(row, &mut codes);
    prop_assert!(rq.finite);
    prop_assert!(rq.scale.is_finite() && rq.scale >= 0.0);
    // Stored L1 norm is the exact integer norm of the emitted codes.
    let l1: u32 = codes.iter().map(|&c| (c as i32).unsigned_abs()).sum();
    prop_assert_eq!(rq.l1, l1);
    // Codes stay in the symmetric range.
    prop_assert!(codes.iter().all(|&c| (-127..=127).contains(&(c as i32))));
    // Per-element round-trip bound: |x_j − s·x̂_j| ≤ s·EPS_HALF. The
    // product s·x̂_j is exact in f64 (24-bit × 8-bit mantissas).
    for (&x, &c) in row.iter().zip(codes.iter()) {
        let err = (x as f64 - rq.scale as f64 * c as f64).abs();
        prop_assert!(
            err <= rq.scale as f64 * EPS_HALF,
            "row {row:?}: x={x} code={c} scale={} err={err}",
            rq.scale
        );
    }
    // Scale 0 if and only if the row is all zeros (finite case) — and
    // then the round-trip is exact.
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    prop_assert_eq!(rq.scale == 0.0, max_abs == 0.0);
    Ok(())
}

proptest! {
    /// The round-trip bound holds on rows drawn across 77 orders of
    /// magnitude, signed zeros and subnormals included.
    #[test]
    fn round_trip_error_is_bounded(row in finite_rows(1..40)) {
        check_row_contract(&row)?;
    }

    /// All-equal rows: every element maps to the same saturated code, so
    /// the relative round-trip error collapses to the scale rounding.
    #[test]
    fn all_equal_rows_saturate_uniformly(v in -1e30f32..1e30, n in 1usize..30) {
        let row = vec![v; n];
        check_row_contract(&row)?;
        let mut codes = vec![0i8; n];
        let rq = quantise_row_into(&row, &mut codes);
        if v == 0.0 {
            // The scale-0 edge: all-zero (or all-negative-zero) rows.
            prop_assert_eq!(rq.scale, 0.0);
            prop_assert!(codes.iter().all(|&c| c == 0));
        } else {
            prop_assert!(codes.windows(2).all(|w| w[0] == w[1]));
            prop_assert_eq!(codes[0].unsigned_abs(), 127);
        }
    }

    /// Scaling a row by a power of two scales the quantisation exactly
    /// with it (power-of-two scaling is lossless in binary floating
    /// point, so the codes must not move).
    #[test]
    fn codes_are_invariant_under_pow2_scaling(
        row in prop::collection::vec(-4.0f32..4.0, 1..20),
        exp in -8i32..9,
    ) {
        let factor = (2.0f64.powi(exp)) as f32;
        let scaled: Vec<f32> = row.iter().map(|&x| x * factor).collect();
        let mut a = vec![0i8; row.len()];
        let mut b = vec![0i8; row.len()];
        quantise_row_into(&row, &mut a);
        quantise_row_into(&scaled, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Non-finite payloads anywhere in the row are flagged, zeroed and
    /// never panic — and they poison the table-level flag.
    #[test]
    fn non_finite_rows_are_flagged(
        row in finite_rows(2..20),
        pos in 0usize..1_000,
        which in 0u32..3,
    ) {
        let mut row = row;
        let pos = pos % row.len();
        row[pos] = match which {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
        let mut codes = vec![0i8; row.len()];
        let rq = quantise_row_into(&row, &mut codes);
        prop_assert!(!rq.finite);
        prop_assert_eq!(rq.scale, 0.0);
        prop_assert!(codes.iter().all(|&c| c == 0));
        let table = QuantTable::from_rows(&row, 1, row.len());
        prop_assert!(!table.all_finite());
    }

    /// The coarse score sits within the certification slack of the true
    /// (f64) dot product — the inequality the two-stage certification
    /// argument is built on, checked end-to-end through the public API.
    #[test]
    fn coarse_score_is_within_certified_slack(
        row in finite_rows(1..30),
        q_raw in prop::collection::vec(-50.0f32..50.0, 30..31),
    ) {
        let d = row.len();
        let q = &q_raw[..d];
        let table = QuantTable::from_rows(&row, 1, d);
        let qq = quantise_query(q);
        let coarse = table.view().coarse_score(&qq, 0);
        let truth: f64 = row.iter().zip(q.iter()).map(|(&x, &y)| x as f64 * y as f64).sum();
        let cc = qq.cert_coeffs(d);
        let slack = table.view().scales()[0] as f64
            * (cc.c1 * table.view().l1_norms()[0] as f64 + cc.c0);
        prop_assert!(
            (coarse - truth).abs() <= slack,
            "coarse {coarse} truth {truth} slack {slack}"
        );
    }
}

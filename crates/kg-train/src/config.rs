//! Training hyper-parameters (the search ranges of Sec. V-A2).

use serde::{Deserialize, Serialize};

/// Which loss drives training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// Full softmax cross-entropy over all entities, both directions — the
    /// multi-class loss of Lacroix et al. the paper adopts.
    MultiClass,
    /// Logistic loss with `m` uniformly-corrupted negatives per positive.
    NegSampling {
        /// Negatives per positive triple.
        m: usize,
    },
}

/// Hyper-parameters for one training run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Embedding dimension `d` (multiple of 4; the paper searches at 64 and
    /// fine-tunes at 256-2048).
    pub dim: usize,
    /// Training epochs ("trained until converge" in the paper; fixed here).
    pub epochs: usize,
    /// Adagrad learning rate η ∈ [0, 1].
    pub lr: f32,
    /// L2 penalty λ ∈ [1e-5, 1e-1].
    pub l2: f32,
    /// N3 (nuclear 3-norm) penalty weight applied to the embedding rows a
    /// triple touches — the regulariser of Lacroix et al. (the multi-class
    /// loss's companion); 0 disables it.
    pub n3: f32,
    /// Per-epoch learning-rate decay ∈ [0.99, 1.0].
    pub decay: f32,
    /// Mini-batch size m ∈ {256, 512, 1024} in the paper; any positive
    /// value here.
    pub batch_size: usize,
    /// Loss function.
    pub loss: LossKind,
    /// Seed for init + shuffling + negative sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dim: 32,
            epochs: 30,
            lr: 0.3,
            l2: 1e-4,
            n3: 0.0,
            decay: 1.0,
            batch_size: 256,
            loss: LossKind::MultiClass,
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// Copy with a different seed (parallel candidate training gives every
    /// candidate its own stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Copy with a different dimension (search at 64, retrain larger).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || !self.dim.is_multiple_of(4) {
            return Err(format!("dim must be a positive multiple of 4, got {}", self.dim));
        }
        if self.lr <= 0.0 {
            return Err("lr must be positive".into());
        }
        if self.l2 < 0.0 {
            return Err("l2 must be non-negative".into());
        }
        if self.n3 < 0.0 {
            return Err("n3 must be non-negative".into());
        }
        if !(0.5..=1.0).contains(&self.decay) {
            return Err(format!("decay {} outside [0.5, 1.0]", self.decay));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if let LossKind::NegSampling { m } = self.loss {
            if m == 0 {
                return Err("need at least one negative sample".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(TrainConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = [
            TrainConfig { dim: 30, ..Default::default() },
            TrainConfig { lr: 0.0, ..Default::default() },
            TrainConfig { decay: 0.2, ..Default::default() },
            TrainConfig { n3: -1.0, ..Default::default() },
            TrainConfig { loss: LossKind::NegSampling { m: 0 }, ..Default::default() },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn with_helpers() {
        let c = TrainConfig::default().with_seed(9).with_dim(64);
        assert_eq!(c.seed, 9);
        assert_eq!(c.dim, 64);
    }
}

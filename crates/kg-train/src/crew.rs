//! The cooperative sharded training engine: a persistent worker crew that
//! executes each [`crate::loss::multiclass_block`] step in parallel.
//!
//! # Layout
//!
//! The entity table is cut into a **fixed shard grid**
//! ([`kg_eval::engine::entity_shard_grid`]) whose size is a knob of its
//! own, *decoupled from the thread count*: shards are dealt round-robin to
//! however many workers exist, so the same grid — and therefore the same
//! floating-point result — serves any crew size. The main thread is the
//! crew's lead: it owns the model, the optimiser and the batch loop, and
//! scores/reduces its own share of shards like every other worker. Spawned
//! workers live for the whole training run (the scope wraps the epoch
//! loop), keep private entity/relation copies refreshed once per batch,
//! and communicate only through `AtomicU32` grids — all cells Relaxed,
//! with the step barriers as the only synchronisation, the same safe-code
//! discipline as the ranking engine's `PipelineSlots`.
//!
//! # One step (one 32-triple block, 64 query rows)
//!
//! 1. **Forward** — every participant builds the full query block (cheap,
//!    duplicated), then scores *its own shards* with the row-restricted
//!    GEMM ([`kg_linalg::gemm::gemm_nt_rows_with`]) and publishes the score
//!    columns into the shared coefficient grid. Shard score slices are
//!    bit-identical columns of the full block, so the assembled grid equals
//!    the sequential score block byte for byte.
//! 2. **Rows** — query rows are dealt evenly across the crew; each row
//!    owner runs the *real* [`kg_linalg::vecops::softmax_inplace`] on its
//!    contiguous full row (the lane-folded exponential sum cannot be
//!    reproduced from shard partials), records the cross-entropy, applies
//!    the `p − onehot` shift and publishes the processed row back.
//! 3. **Backward, owner-split** — per-entity gradients are computed
//!    entirely within the owning shard: each worker accumulates the rank-1
//!    `(p − onehot) ⊗ q` updates for *its shard's entity rows only* into a
//!    private block (no races, same add order per row as the sequential
//!    `ger`), and reduces its shards' query-side partials with
//!    [`kg_linalg::gemm::gemm_acc_t_rows_with`] into per-shard slots.
//! 4. **Reduce (lead)** — the lead merges the `dL/dq` partials in **fixed
//!    ascending shard order**, then walks the block in the sequential
//!    path's triple order: query-backward hooks, conditioning-entity and
//!    relation-row accumulation, cross-entropy bookkeeping. Mid-batch this
//!    overlaps the crew's next forward (the PR 6 pipeline discipline: the
//!    lead converts step `s` while the crew scores step `s + 1` — disjoint
//!    grids, one gate barrier per step).
//!
//! At a batch boundary workers additionally flush their private gradient
//! blocks to the shared grid; the lead assembles the dense gradient, adds
//! the N3/L2 terms, takes the Adagrad step and republishes the parameters
//! before the crew's next gate.
//!
//! # Determinism contract
//!
//! Two tiers, pinned by `tests/train_equivalence.rs`:
//!
//! * **Bit-identical to the sequential block path** (under
//!   [`KernelPolicy::Exact`]): forward scores, softmax probabilities and
//!   per-block cross-entropies — sharding restricts which columns a worker
//!   computes, never their value, and softmax runs on assembled full rows.
//! * **Deterministic at a fixed shard grid, for any thread count** (any
//!   policy): the merged `dL/dq` reassociates f32 additions at shard cuts,
//!   and conditioning-entity contributions are applied after (not
//!   interleaved with) the rank-1 terms, so trained embeddings differ from
//!   the sequential trainer within FP noise — but they are a pure function
//!   of `(seed, shard grid, kernel backend)`. Thread count, scheduling and
//!   oversubscription cannot show in a single byte of the result.
//!
//! # Poison
//!
//! Every participant crosses the same barrier sequence in lockstep (gate,
//! forward, rows, flush on batch ends), so a running count of barriers
//! attended names each rendezvous unambiguously. A panic anywhere in the
//! crew tags a shared poison slot with the panicker's count
//! (`fetch_min(bar)` — the index of the barrier it attends as its last),
//! attends that barrier, and re-raises. Every other participant checks
//! the tag after every barrier and exits exactly at the tagged one: the
//! barrier's own synchronisation makes the tag visible to everyone who
//! crosses it, and a tag set mid-phase is still *ahead* of the counts of
//! participants at earlier barriers, so nobody bails out early and
//! strands the panicker (step-scoped tags would race exactly that way).
//! No deadlock, no abandoned crew; the lead joins the workers and then
//! propagates the original payload.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering::Relaxed};
use std::sync::Barrier;

use crate::config::TrainConfig;
use crate::loss::MULTICLASS_BLOCK;
use crate::trainer::{ControlFlow, EpochCallback, EpochInfo};
use kg_core::Dataset;
use kg_eval::engine::{entity_shard_grid, WorkerShard};
use kg_linalg::{gemm, vecops, Adagrad, KernelPolicy, Mat, Optimizer, SeededRng};
use kg_models::{BlmModel, BlockSpec, Embeddings};

/// Query rows per step: two directions per triple of a full block.
const ROWS: usize = 2 * MULTICLASS_BLOCK;

/// Default fixed shard-grid size. Small enough that merging partials stays
/// a rounding error next to the GEMMs, large enough to deal several shards
/// to each worker of any sensible crew (the grid is capped at the entity
/// count). Changing it changes the gradient's f32 reassociation — it is
/// part of the deterministic layout, not a free tuning knob.
pub const DEFAULT_TRAIN_SHARDS: usize = 16;

const FLAG_REFRESH: usize = 1;
const FLAG_FLUSH: usize = 2;
const FLAG_DONE: usize = 4;

/// Step metadata the lead hands the crew at each gate: the triple block
/// plus control flags. Written strictly between the previous step's rows
/// barrier and the gate, read strictly between the gate and the forward
/// barrier, so a single buffer suffices.
struct StepMeta {
    h: Vec<AtomicUsize>,
    r: Vec<AtomicUsize>,
    t: Vec<AtomicUsize>,
    len: AtomicUsize,
    flags: AtomicUsize,
}

impl StepMeta {
    fn new() -> Self {
        let cell = || (0..MULTICLASS_BLOCK).map(|_| AtomicUsize::new(0)).collect();
        StepMeta {
            h: cell(),
            r: cell(),
            t: cell(),
            len: AtomicUsize::new(0),
            flags: AtomicUsize::new(0),
        }
    }
}

/// The crew's shared state: parameter image, score/coefficient grid,
/// per-shard gradient partial slots, step metadata and the barriers.
struct SharedCrew {
    /// Published model parameters, entity table then relation table.
    params: Vec<AtomicU32>,
    /// The `ROWS × n_ent` score block; raw scores after the forward
    /// barrier, `p − onehot` coefficients after the rows barrier.
    coeff: Vec<AtomicU32>,
    /// Per-shard `dL/dq` partials, `n_shards × ROWS × dim`.
    dq_parts: Vec<AtomicU32>,
    /// Per-row cross-entropy slots.
    ce: Vec<AtomicU32>,
    /// Rank-1 entity-gradient totals, flushed once per batch.
    d_ent: Vec<AtomicU32>,
    meta: StepMeta,
    /// Step gate: meta is valid, previous step fully converted.
    gate: Barrier,
    /// Forward complete: the coefficient grid holds the full score block.
    forward: Barrier,
    /// Rows complete: softmaxed coefficients and cross-entropies published.
    rows: Barrier,
    /// Batch flush complete: gradient blocks are in the shared grid.
    flush: Barrier,
    /// Step-tagged poison: `usize::MAX` while healthy, `fetch_min(step)`
    /// on panic. Checked after every barrier.
    poisoned: AtomicUsize,
    /// The fixed entity-shard grid (round-robin dealt to workers).
    shards: Vec<Range<usize>>,
    n_workers: usize,
    n_ent: usize,
    n_rel: usize,
    dim: usize,
}

impl SharedCrew {
    fn new(n_ent: usize, n_rel: usize, dim: usize, n_shards: usize, n_workers: usize) -> Self {
        let cells = |len: usize| (0..len).map(|_| AtomicU32::new(0)).collect::<Vec<_>>();
        let shards: Vec<Range<usize>> = entity_shard_grid(n_ent, n_shards)
            .into_iter()
            .map(|s| match s {
                WorkerShard::Entities(r) => r,
                WorkerShard::Queries { .. } => unreachable!("entity grids are entity shards"),
            })
            .collect();
        SharedCrew {
            params: cells((n_ent + n_rel) * dim),
            coeff: cells(ROWS * n_ent),
            dq_parts: cells(n_shards * ROWS * dim),
            ce: cells(ROWS),
            d_ent: cells(n_ent * dim),
            meta: StepMeta::new(),
            gate: Barrier::new(n_workers),
            forward: Barrier::new(n_workers),
            rows: Barrier::new(n_workers),
            flush: Barrier::new(n_workers),
            poisoned: AtomicUsize::new(usize::MAX),
            shards,
            n_workers,
            n_ent,
            n_rel,
            dim,
        }
    }

    /// Tag the crew as poisoned at rendezvous index `bar` — the number of
    /// barriers the panicking participant has already attended, i.e. the
    /// index of the one it is about to attend as its last. Every
    /// participant crosses the same barrier sequence in lockstep, so the
    /// index names one specific rendezvous for the whole crew.
    fn poison(&self, bar: usize) {
        self.poisoned.fetch_min(bar, Relaxed);
    }

    /// Whether the crew is poisoned at a rendezvous this participant has
    /// already crossed (`attended` = its barrier count so far). Only
    /// meaningful directly after a barrier: the panicker's tag is written
    /// before it attends the poison barrier, so the barrier's own
    /// synchronisation guarantees every participant sees the tag when
    /// crossing that barrier — and never acts on it at an earlier one,
    /// because the tagged index is still ahead of its own count.
    fn aborted(&self, attended: usize) -> bool {
        self.poisoned.load(Relaxed) < attended
    }

    /// Shard indices worker `w` owns: `w, w + crew, w + 2·crew, …`.
    fn owned_shards(&self, w: usize) -> impl Iterator<Item = usize> + '_ {
        (w..self.shards.len()).step_by(self.n_workers)
    }

    fn write_meta(&self, block: &[(usize, usize, usize)], flags: usize) {
        for (i, &(h, r, t)) in block.iter().enumerate() {
            self.meta.h[i].store(h, Relaxed);
            self.meta.r[i].store(r, Relaxed);
            self.meta.t[i].store(t, Relaxed);
        }
        self.meta.len.store(block.len(), Relaxed);
        self.meta.flags.store(flags, Relaxed);
    }

    fn read_meta(&self, block: &mut Vec<(usize, usize, usize)>) -> usize {
        block.clear();
        for i in 0..self.meta.len.load(Relaxed) {
            block.push((
                self.meta.h[i].load(Relaxed),
                self.meta.r[i].load(Relaxed),
                self.meta.t[i].load(Relaxed),
            ));
        }
        self.meta.flags.load(Relaxed)
    }

    /// Publish the lead's parameters for the crew's next per-batch refresh.
    fn publish_params(&self, model: &BlmModel) {
        let ent = model.emb.ent.as_slice();
        let rel = model.emb.rel.as_slice();
        for (cell, &v) in self.params.iter().zip(ent.iter().chain(rel.iter())) {
            cell.store(v.to_bits(), Relaxed);
        }
    }

    fn load_params(&self, ent: &mut Mat, rel: &mut Mat) {
        let split = self.n_ent * self.dim;
        for (v, cell) in ent.as_mut_slice().iter_mut().zip(&self.params[..split]) {
            *v = f32::from_bits(cell.load(Relaxed));
        }
        for (v, cell) in rel.as_mut_slice().iter_mut().zip(&self.params[split..]) {
            *v = f32::from_bits(cell.load(Relaxed));
        }
    }
}

/// One participant's reusable scratch, allocated once and carried across
/// every step of every epoch.
struct WorkerScratch {
    /// The full query block (every participant builds all rows).
    queries: Vec<f32>,
    /// Shard-compact score / coefficient staging, `ROWS × max shard width`.
    shard_block: Vec<f32>,
    /// One full score row for the softmax pass.
    row_buf: Vec<f32>,
    /// One shard's `dL/dq` partial.
    dq_part: Vec<f32>,
    /// Private rank-1 gradient blocks, one per owned shard, accumulated
    /// across the batch and flushed at its end.
    d_ent_blocks: Vec<Mat>,
}

impl WorkerScratch {
    fn new(sh: &SharedCrew, w: usize) -> Self {
        let max_width = sh.shards.iter().map(|r| r.len()).max().unwrap_or(0);
        WorkerScratch {
            queries: vec![0.0; ROWS * sh.dim],
            shard_block: vec![0.0; ROWS * max_width],
            row_buf: vec![0.0; sh.n_ent],
            dq_part: vec![0.0; ROWS * sh.dim],
            d_ent_blocks: sh
                .owned_shards(w)
                .map(|s| Mat::zeros(sh.shards[s].len(), sh.dim))
                .collect(),
        }
    }
}

/// Build the full query block — stage 1 of the sequential path, verbatim.
fn build_queries(
    spec: &BlockSpec,
    block: &[(usize, usize, usize)],
    ent: &Mat,
    rel: &Mat,
    queries: &mut [f32],
) {
    let dim = ent.cols();
    let dsub = dim / 4;
    for (i, &(h, r, t)) in block.iter().enumerate() {
        spec.tail_query(
            ent.row(h),
            rel.row(r),
            &mut queries[(2 * i) * dim..(2 * i + 1) * dim],
            dsub,
        );
        spec.head_query(
            ent.row(t),
            rel.row(r),
            &mut queries[(2 * i + 1) * dim..(2 * i + 2) * dim],
            dsub,
        );
    }
}

/// Forward: score the worker's shards and publish the columns.
#[allow(clippy::too_many_arguments)]
fn phase_forward(
    sh: &SharedCrew,
    policy: KernelPolicy,
    spec: &BlockSpec,
    block: &[(usize, usize, usize)],
    ent: &Mat,
    rel: &Mat,
    scratch: &mut WorkerScratch,
    w: usize,
) {
    let (dim, n) = (sh.dim, sh.n_ent);
    let m = 2 * block.len();
    build_queries(spec, block, ent, rel, &mut scratch.queries[..m * dim]);
    for s in sh.owned_shards(w) {
        let range = sh.shards[s].clone();
        let width = range.len();
        if width == 0 {
            continue;
        }
        let out = &mut scratch.shard_block[..m * width];
        gemm::gemm_nt_rows_with(
            policy,
            &scratch.queries[..m * dim],
            m,
            dim,
            ent,
            range.clone(),
            out,
        );
        for i in 0..m {
            for j in 0..width {
                sh.coeff[i * n + range.start + j].store(out[i * width + j].to_bits(), Relaxed);
            }
        }
    }
}

/// Rows: softmax + cross-entropy + `p − onehot` on the worker's share of
/// the block's query rows — full contiguous rows, so the lane-folded
/// softmax is bit-identical to the sequential pass whatever the row split.
fn phase_rows(
    sh: &SharedCrew,
    block: &[(usize, usize, usize)],
    scratch: &mut WorkerScratch,
    w: usize,
) {
    let n = sh.n_ent;
    let m = 2 * block.len();
    let my_rows = WorkerShard::Queries { worker: w, n_workers: sh.n_workers }.rows(m);
    for row in my_rows {
        let s = &mut scratch.row_buf[..n];
        for (v, cell) in s.iter_mut().zip(&sh.coeff[row * n..(row + 1) * n]) {
            *v = f32::from_bits(cell.load(Relaxed));
        }
        vecops::softmax_inplace(s);
        let (h, _, t) = block[row / 2];
        let target = if row % 2 == 0 { t } else { h };
        let ce = -(s[target].max(1e-12)).ln();
        s[target] -= 1.0;
        for (cell, &v) in sh.coeff[row * n..(row + 1) * n].iter().zip(s.iter()) {
            cell.store(v.to_bits(), Relaxed);
        }
        sh.ce[row].store(ce.to_bits(), Relaxed);
    }
}

/// Owner-split backward: per owned shard, reduce the query-side partial
/// (`entᵀ (p − onehot)`, shard rows only) into its slot and accumulate the
/// rank-1 entity gradients into the private block — per entity row, the
/// same `axpy(coeff, q, row)` sequence in the same block-row order as the
/// sequential `ger`. On a flush step the private blocks then move to the
/// shared gradient grid and reset for the next batch.
fn phase_backward(
    sh: &SharedCrew,
    policy: KernelPolicy,
    m: usize,
    ent: &Mat,
    scratch: &mut WorkerScratch,
    w: usize,
    flush: bool,
) {
    let (dim, n) = (sh.dim, sh.n_ent);
    for (local, s) in sh.owned_shards(w).enumerate() {
        let range = sh.shards[s].clone();
        let width = range.len();
        let coeffs = &mut scratch.shard_block[..m * width];
        for i in 0..m {
            for j in 0..width {
                coeffs[i * width + j] =
                    f32::from_bits(sh.coeff[i * n + range.start + j].load(Relaxed));
            }
        }
        // Always reduce (an empty shard publishes zeros): the slots persist
        // across steps, so every step must overwrite its own partial.
        let part = &mut scratch.dq_part[..m * dim];
        gemm::gemm_acc_t_rows_with(policy, coeffs, m, ent, range.clone(), part);
        let slot = &sh.dq_parts[s * ROWS * dim..];
        for (cell, &v) in slot.iter().zip(part.iter()) {
            cell.store(v.to_bits(), Relaxed);
        }
        let d_block = &mut scratch.d_ent_blocks[local];
        for j in 0..width {
            let row = d_block.row_mut(j);
            for i in 0..m {
                vecops::axpy(coeffs[i * width + j], &scratch.queries[i * dim..(i + 1) * dim], row);
            }
        }
    }
    if flush {
        for (local, s) in sh.owned_shards(w).enumerate() {
            let range = sh.shards[s].clone();
            let d_block = &mut scratch.d_ent_blocks[local];
            for (j, e) in range.enumerate() {
                let row = d_block.row_mut(j);
                for (c, v) in row.iter_mut().enumerate() {
                    sh.d_ent[e * dim + c].store(v.to_bits(), Relaxed);
                    *v = 0.0;
                }
            }
        }
    }
}

/// A spawned (non-lead) crew member: loop over steps until told to stop,
/// poisoned, or panicking. Panics re-raise after attending the barrier the
/// phase would have reached, so the crew unwinds without deadlock and the
/// payload surfaces through the lead's join.
fn worker_loop(
    sh: &SharedCrew,
    spec: &BlockSpec,
    policy: KernelPolicy,
    w: usize,
    panic_inject: Option<(usize, usize)>,
) {
    let mut ent = Mat::zeros(sh.n_ent, sh.dim);
    let mut rel = Mat::zeros(sh.n_rel, sh.dim);
    let mut scratch = WorkerScratch::new(sh, w);
    let mut block: Vec<(usize, usize, usize)> = Vec::with_capacity(MULTICLASS_BLOCK);
    let mut step = 0usize;
    let mut bar = 0usize;
    loop {
        if wait_bar(sh, &sh.gate, &mut bar) {
            return;
        }
        let flags = sh.read_meta(&mut block);
        if flags & FLAG_DONE != 0 {
            return;
        }
        if flags & FLAG_REFRESH != 0 {
            sh.load_params(&mut ent, &mut rel);
        }
        let m = 2 * block.len();
        let flushing = flags & FLAG_FLUSH != 0;

        let fwd = catch_unwind(AssertUnwindSafe(|| {
            phase_forward(sh, policy, spec, &block, &ent, &rel, &mut scratch, w)
        }));
        if sync_or_unwind(sh, &sh.forward, &mut bar, fwd) {
            return;
        }

        let rows = catch_unwind(AssertUnwindSafe(|| {
            if let Some((ps, pw)) = panic_inject {
                assert!(
                    ps != step || pw != w,
                    "train crew grenade tripped (step {step}, worker {w})"
                );
            }
            phase_rows(sh, &block, &mut scratch, w)
        }));
        if sync_or_unwind(sh, &sh.rows, &mut bar, rows) {
            return;
        }

        let bwd = catch_unwind(AssertUnwindSafe(|| {
            phase_backward(sh, policy, m, &ent, &mut scratch, w, flushing)
        }));
        // The backward phase's rendezvous is the flush barrier on a batch
        // boundary and the next gate otherwise (the loop head).
        if flushing {
            if sync_or_unwind(sh, &sh.flush, &mut bar, bwd) {
                return;
            }
        } else if let Err(payload) = bwd {
            sh.poison(bar);
            sh.gate.wait();
            resume_unwind(payload);
        }
        step += 1;
    }
}

/// Attend the participant's next barrier; returns whether the crew is
/// poisoned at a rendezvous it has now crossed (caller must exit).
fn wait_bar(sh: &SharedCrew, barrier: &Barrier, bar: &mut usize) -> bool {
    barrier.wait();
    *bar += 1;
    sh.aborted(*bar)
}

/// Fold a phase result into the poison protocol: attend `barrier` whatever
/// happened — tagging the poison with this rendezvous's index first on a
/// panic, then re-raising — so every participant leaves the same barrier.
/// Returns whether the caller must exit.
fn sync_or_unwind(
    sh: &SharedCrew,
    barrier: &Barrier,
    bar: &mut usize,
    result: std::thread::Result<()>,
) -> bool {
    match result {
        Ok(()) => wait_bar(sh, barrier, bar),
        Err(payload) => {
            sh.poison(*bar);
            barrier.wait();
            resume_unwind(payload);
        }
    }
}

/// Train `spec` with the cooperative crew. The lead (calling thread) runs
/// the epoch/batch loop and works shards alongside `threads − 1` spawned
/// workers kept alive across all epochs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn train_crew<F>(
    spec: &BlockSpec,
    ds: &Dataset,
    cfg: &TrainConfig,
    policy: KernelPolicy,
    threads: usize,
    shards: usize,
    panic_inject: Option<(usize, usize)>,
    mut on_epoch: F,
) -> BlmModel
where
    F: EpochCallback,
{
    cfg.validate().expect("invalid training configuration");
    assert!(!ds.train.is_empty(), "cannot train on an empty training set");
    assert!(threads >= 1, "crew needs at least one thread");
    assert!(shards >= 1, "crew needs at least one shard");
    let mut rng = SeededRng::new(cfg.seed ^ 0xEE55_11AA_77CC_33BB);
    let emb = Embeddings::init(ds.n_entities, ds.n_relations, cfg.dim, &mut rng);
    let mut model = BlmModel::new(spec.clone(), emb);

    let n_ent = ds.n_entities;
    let n_rel = ds.n_relations;
    let dim = cfg.dim;
    let dsub = dim / 4;
    let n_shards = shards.min(n_ent).max(1);
    let sh = SharedCrew::new(n_ent, n_rel, dim, n_shards, threads);
    let spec = spec.clone();

    let mut opt = Adagrad::new(n_ent * dim + n_rel * dim, cfg.lr, cfg.decay);
    let mut d_ent = Mat::zeros(n_ent, dim);
    let mut d_ent_cond = Mat::zeros(n_ent, dim);
    let mut d_rel = Mat::zeros(n_rel, dim);
    let mut dq_full = vec![0.0f32; ROWS * dim];
    let mut hook_cond = vec![0.0f32; dim];
    let mut hook_rel = vec![0.0f32; dim];
    let mut lead_scratch = WorkerScratch::new(&sh, 0);
    let mut block: Vec<(usize, usize, usize)> = Vec::with_capacity(MULTICLASS_BLOCK);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let start = std::time::Instant::now();

    if threads > 1 {
        sh.publish_params(&model);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let (sh, spec) = (&sh, &spec);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kg-train-crew-{w}"))
                    .spawn_scoped(scope, move || worker_loop(sh, spec, policy, w, panic_inject))
                    .expect("spawn crew worker"),
            );
        }

        // The lead's driving loop, with panics funnelled into the poison
        // protocol so the crew always unwinds before the payload re-raises.
        let mut lead_payload: Option<Box<dyn std::any::Any + Send>> = None;
        let mut aborted = false;
        let mut step = 0usize;
        let mut bar = 0usize;
        // Converted lazily: `Some(block)` holds a mid-batch step whose
        // reduce overlaps the crew's next forward.
        let mut pending: Option<Vec<(usize, usize, usize)>> = None;

        // Runs `f`, then attends `barrier` under the poison protocol; on a
        // panic, tags the poison with this rendezvous's index and stashes
        // the payload (the lead must join the crew before re-raising).
        // `None` or `aborted` afterwards means: stop driving.
        macro_rules! guarded {
            ($barrier:expr, $f:expr) => {{
                match catch_unwind(AssertUnwindSafe(|| $f)) {
                    Ok(v) => {
                        if wait_bar(&sh, $barrier, &mut bar) {
                            aborted = true;
                        }
                        Some(v)
                    }
                    Err(p) => {
                        sh.poison(bar);
                        $barrier.wait();
                        bar += 1;
                        lead_payload = Some(p);
                        aborted = true;
                        None
                    }
                }
            }};
        }

        'epochs: for epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f64;
            let mut n_terms = 0usize;
            for batch in order.chunks(cfg.batch_size) {
                d_rel.clear();
                let n_blocks = batch.len().div_ceil(MULTICLASS_BLOCK);
                for (bi, chunk) in batch.chunks(MULTICLASS_BLOCK).enumerate() {
                    let is_last = bi + 1 == n_blocks;
                    block.clear();
                    block.extend(chunk.iter().map(|&i| {
                        let tr = ds.train[i];
                        (tr.h.idx(), tr.r.idx(), tr.t.idx())
                    }));
                    let m = 2 * block.len();
                    let mut flags = if bi == 0 { FLAG_REFRESH } else { 0 };
                    if is_last {
                        flags |= FLAG_FLUSH;
                    }
                    sh.write_meta(&block, flags);
                    if wait_bar(&sh, &sh.gate, &mut bar) {
                        aborted = true;
                        break 'epochs;
                    }

                    // Reduce the previous mid-batch step, then score this
                    // step's shards, both before the forward barrier: the
                    // lead's reduce of step `s − 1` overlaps the crew's
                    // forward of step `s` — the pipeline overlap. Safe:
                    // reduce reads `dq_parts`/`ce` (which the crew next
                    // writes only after this step's rows barrier) and
                    // writes lead-private accumulators.
                    let prev = pending.take();
                    let fwd = guarded!(&sh.forward, {
                        let prev_ce = prev.as_deref().map(|p| {
                            lead_reduce(
                                &sh,
                                &spec,
                                &model,
                                p,
                                dsub,
                                &mut dq_full,
                                &mut hook_cond,
                                &mut hook_rel,
                                &mut d_ent_cond,
                                &mut d_rel,
                            )
                        });
                        phase_forward(
                            &sh,
                            policy,
                            &spec,
                            &block,
                            &model.emb.ent,
                            &model.emb.rel,
                            &mut lead_scratch,
                            0,
                        );
                        prev_ce
                    });
                    match fwd {
                        Some(prev_ce) => {
                            if let (Some(ce), Some(p)) = (prev_ce, prev.as_ref()) {
                                epoch_loss += ce as f64;
                                n_terms += 2 * p.len();
                            }
                        }
                        None => break 'epochs,
                    }
                    if aborted {
                        break 'epochs;
                    }

                    let rows_ok = guarded!(&sh.rows, {
                        if let Some((ps, pw)) = panic_inject {
                            assert!(
                                ps != step || pw != 0,
                                "train crew grenade tripped (step {step}, worker 0)"
                            );
                        }
                        phase_rows(&sh, &block, &mut lead_scratch, 0)
                    });
                    if rows_ok.is_none() || aborted {
                        break 'epochs;
                    }

                    let bwd = catch_unwind(AssertUnwindSafe(|| {
                        phase_backward(
                            &sh,
                            policy,
                            m,
                            &model.emb.ent,
                            &mut lead_scratch,
                            0,
                            is_last,
                        )
                    }));
                    if let Err(p) = bwd {
                        // The backward phase's rendezvous: flush barrier on
                        // a batch boundary, the next gate otherwise.
                        sh.poison(bar);
                        if is_last {
                            sh.flush.wait();
                        } else {
                            sh.gate.wait();
                        }
                        lead_payload = Some(p);
                        aborted = true;
                        break 'epochs;
                    }

                    if is_last {
                        let flush_ok = guarded!(&sh.flush, ());
                        if flush_ok.is_none() || aborted {
                            break 'epochs;
                        }
                        let end = guarded_batch_end(
                            &sh,
                            &spec,
                            &mut model,
                            &block,
                            batch,
                            ds,
                            cfg,
                            dsub,
                            &mut dq_full,
                            &mut hook_cond,
                            &mut hook_rel,
                            &mut d_ent,
                            &mut d_ent_cond,
                            &mut d_rel,
                            &mut opt,
                            &mut bar,
                            threads,
                        );
                        match end {
                            Ok(ce) => {
                                epoch_loss += ce as f64;
                                n_terms += 2 * block.len();
                            }
                            Err(p) => {
                                lead_payload = Some(p);
                                aborted = true;
                                break 'epochs;
                            }
                        }
                    } else {
                        pending = Some(block.clone());
                    }
                    step += 1;
                }
            }
            opt.end_epoch();
            let info = EpochInfo {
                epoch,
                loss: (epoch_loss / n_terms.max(1) as f64) as f32,
                seconds: start.elapsed().as_secs_f64(),
            };
            let verdict = catch_unwind(AssertUnwindSafe(|| on_epoch.on_epoch(&model, info)));
            match verdict {
                Ok(ControlFlow::Continue) => {}
                Ok(ControlFlow::Stop) => break 'epochs,
                Err(p) => {
                    // The crew waits at the gate; wake it into the poison.
                    sh.poison(bar);
                    sh.gate.wait();
                    lead_payload = Some(p);
                    aborted = true;
                    break 'epochs;
                }
            }
        }

        if !aborted {
            sh.write_meta(&[], FLAG_DONE);
            sh.gate.wait();
        }
        let mut crew_payload = None;
        for handle in handles {
            if let Err(p) = handle.join() {
                crew_payload.get_or_insert(p);
            }
        }
        if let Some(p) = crew_payload.or(lead_payload) {
            resume_unwind(p);
        }
    });
    model
}

/// Merge the step's `dL/dq` partials in fixed ascending shard order, then
/// run the sequential path's per-triple backward hooks and cross-entropy
/// bookkeeping. Returns the block's summed cross-entropy.
#[allow(clippy::too_many_arguments)]
fn lead_reduce(
    sh: &SharedCrew,
    spec: &BlockSpec,
    model: &BlmModel,
    block: &[(usize, usize, usize)],
    dsub: usize,
    dq_full: &mut [f32],
    hook_cond: &mut [f32],
    hook_rel: &mut [f32],
    d_ent_cond: &mut Mat,
    d_rel: &mut Mat,
) -> f32 {
    let dim = sh.dim;
    let m = 2 * block.len();
    let dq = &mut dq_full[..m * dim];
    vecops::zero(dq);
    for s in 0..sh.shards.len() {
        let slot = &sh.dq_parts[s * ROWS * dim..][..m * dim];
        for (acc, cell) in dq.iter_mut().zip(slot) {
            *acc += f32::from_bits(cell.load(Relaxed));
        }
    }
    let mut block_ce = 0.0f32;
    for row in 0..m {
        block_ce += f32::from_bits(sh.ce[row].load(Relaxed));
    }
    let (ent, rel) = (&model.emb.ent, &model.emb.rel);
    for (i, &(h, r, t)) in block.iter().enumerate() {
        for (row, tail_direction, cond) in [(2 * i, true, h), (2 * i + 1, false, t)] {
            let dq_row = &dq[row * dim..(row + 1) * dim];
            vecops::zero(hook_cond);
            vecops::zero(hook_rel);
            if tail_direction {
                spec.tail_query_backward(
                    ent.row(cond),
                    rel.row(r),
                    dq_row,
                    hook_cond,
                    hook_rel,
                    dsub,
                );
            } else {
                spec.head_query_backward(
                    ent.row(cond),
                    rel.row(r),
                    dq_row,
                    hook_cond,
                    hook_rel,
                    dsub,
                );
            }
            vecops::axpy(1.0, hook_cond, d_ent_cond.row_mut(cond));
            vecops::axpy(1.0, hook_rel, d_rel.row_mut(r));
        }
    }
    block_ce
}

/// The batch-boundary tail: reduce the flush step, assemble the dense
/// entity gradient (rank-1 totals from the grid + conditioning totals),
/// apply N3/L2, take the Adagrad step and republish parameters. Runs under
/// the poison protocol: a panic wakes the crew (waiting at the gate) into
/// the abort.
#[allow(clippy::too_many_arguments)]
fn guarded_batch_end(
    sh: &SharedCrew,
    spec: &BlockSpec,
    model: &mut BlmModel,
    block: &[(usize, usize, usize)],
    batch: &[usize],
    ds: &Dataset,
    cfg: &TrainConfig,
    dsub: usize,
    dq_full: &mut [f32],
    hook_cond: &mut [f32],
    hook_rel: &mut [f32],
    d_ent: &mut Mat,
    d_ent_cond: &mut Mat,
    d_rel: &mut Mat,
    opt: &mut Adagrad,
    bar: &mut usize,
    threads: usize,
) -> Result<f32, Box<dyn std::any::Any + Send>> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let ce = lead_reduce(
            sh, spec, model, block, dsub, dq_full, hook_cond, hook_rel, d_ent_cond, d_rel,
        );
        // Dense gradient: rank-1 totals (grid) + conditioning totals — one
        // elementwise add, the same two-subtotal sum for every crew size.
        for (v, cell) in d_ent.as_mut_slice().iter_mut().zip(&sh.d_ent) {
            *v = f32::from_bits(cell.load(Relaxed));
        }
        vecops::axpy(1.0, d_ent_cond.as_slice(), d_ent.as_mut_slice());
        d_ent_cond.clear();
        if cfg.n3 > 0.0 {
            for &i in batch {
                let tr = ds.train[i];
                for row in [tr.h.idx(), tr.t.idx()] {
                    crate::trainer::n3_grad(cfg.n3, model.emb.ent.row(row), d_ent.row_mut(row));
                }
                crate::trainer::n3_grad(
                    cfg.n3,
                    model.emb.rel.row(tr.r.idx()),
                    d_rel.row_mut(tr.r.idx()),
                );
            }
        }
        let inv = 1.0 / batch.len() as f32;
        vecops::scale(inv, d_ent.as_mut_slice());
        vecops::scale(inv, d_rel.as_mut_slice());
        if cfg.l2 > 0.0 {
            vecops::axpy(cfg.l2, model.emb.ent.as_slice(), d_ent.as_mut_slice());
            vecops::axpy(cfg.l2, model.emb.rel.as_slice(), d_rel.as_mut_slice());
        }
        opt.update(0, model.emb.ent.as_mut_slice(), d_ent.as_slice());
        opt.update(sh.n_ent * sh.dim, model.emb.rel.as_mut_slice(), d_rel.as_slice());
        if threads > 1 {
            sh.publish_params(model);
        }
        ce
    }));
    if result.is_err() {
        // The crew is heading for (or waiting at) the next gate — its next
        // rendezvous and therefore this participant's poison index.
        sh.poison(*bar);
        sh.gate.wait();
        *bar += 1;
    }
    result
}

//! Training substrate for bilinear KGE models.
//!
//! Implements Alg. 1 (stochastic training of KGE) with the paper's choices:
//! Adagrad (Sec. V-A2), the multi-class loss ("we use the multi-class loss
//! \[19\] since it currently achieves the best performance", Sec. II-A) and
//! mini-batches. A negative-sampling logistic loss is provided for the loss
//! ablation.
//!
//! * [`config`] — [`config::TrainConfig`], the hyper-parameters of Sec. V-A2.
//! * [`loss`] — loss functions over [`kg_models::BlockSpec`] scores.
//! * [`trainer`] — the mini-batch trainer, with an epoch callback for
//!   learning-curve capture (Fig. 4).
//! * [`parallel`] — scoped-thread fan-out training of many candidate structures
//!   (the paper trains "8 models in parallel", Sec. V-A3).
//! * [`tpe`] — a Tree-structured Parzen Estimator: the stand-in for
//!   HyperOpt (hyper-parameter tuning, Sec. V-A2) and the "Bayes" search
//!   baseline of Fig. 6.

pub mod config;
pub mod loss;
pub mod parallel;
pub mod tpe;
pub mod trainer;

pub use config::{LossKind, TrainConfig};
pub use trainer::{train, train_with_callback, ControlFlow, EpochCallback, EpochInfo};

//! Training substrate for bilinear KGE models.
//!
//! Implements Alg. 1 (stochastic training of KGE) with the paper's choices:
//! Adagrad (Sec. V-A2), the multi-class loss ("we use the multi-class loss
//! \[19\] since it currently achieves the best performance", Sec. II-A) and
//! mini-batches. A negative-sampling logistic loss is provided for the loss
//! ablation.
//!
//! * [`config`] — [`config::TrainConfig`], the hyper-parameters of Sec. V-A2.
//! * [`loss`] — loss functions over [`kg_models::BlockSpec`] scores.
//! * [`trainer`] — the mini-batch trainer, with an epoch callback for
//!   learning-curve capture (Fig. 4), and the [`Trainer`] builder that
//!   selects the engine.
//! * [`crew`] — the cooperative sharded training engine: a persistent
//!   worker crew splits each multi-class block step by entity shard
//!   (forward scores, rank-1 entity gradients) and by gradient owner
//!   (query-side partials merged by the lead in fixed ascending shard
//!   order), deterministic for any thread count at a fixed shard grid.
//! * [`parallel`] — scoped-thread fan-out training of many candidate structures
//!   (the paper trains "8 models in parallel", Sec. V-A3).
//! * [`tpe`] — a Tree-structured Parzen Estimator: the stand-in for
//!   HyperOpt (hyper-parameter tuning, Sec. V-A2) and the "Bayes" search
//!   baseline of Fig. 6.
//!
//! # Determinism
//!
//! Results never depend on scheduling. The sequential loop is bit-exact
//! given a seed; the crew is bit-exact given a seed *and a shard grid* —
//! its forward scores, softmax probabilities and cross-entropies equal the
//! sequential path's bit for bit, while merged query-side gradients
//! reassociate f32 sums at fixed shard cuts only. See [`crew`] for the
//! full contract.

pub mod config;
pub mod crew;
pub mod loss;
pub mod parallel;
pub mod tpe;
pub mod trainer;

pub use config::{LossKind, TrainConfig};
pub use crew::DEFAULT_TRAIN_SHARDS;
pub use trainer::{train, train_with_callback, ControlFlow, EpochCallback, EpochInfo, Trainer};

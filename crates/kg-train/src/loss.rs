//! Loss computations shared by the trainer.
//!
//! Both losses produce gradients through the same three hooks of
//! [`kg_models::BlockSpec`]: the ranking queries (`q`, `p`) and their
//! backward passes — everything else is dense accumulation handled by the
//! trainer.
//!
//! The multi-class loss has two entry points: [`multiclass_direction`]
//! scores one `(entity, relation)` query with a GEMV — the reference path,
//! kept for gradient tests and single-triple callers — and
//! [`multiclass_block`], which routes a whole mini-batch slice through the
//! batched scoring engine's GEMM kernels ([`kg_linalg::gemm`]). The block
//! path performs the same floating-point operations in the same order per
//! query/row, so training trajectories are unchanged; only the memory
//! traffic over the entity table shrinks (streamed once per block instead
//! of once per query).

use kg_core::Triple;
use kg_linalg::{KernelPolicy, Mat};
use kg_models::BlockSpec;

/// Scratch buffers reused across triples (no allocation in the hot loop).
pub struct LossScratch {
    /// Ranking query vector.
    pub q: Vec<f32>,
    /// Gradient of the loss w.r.t. `q`.
    pub dq: Vec<f32>,
    /// Per-entity scores / probabilities.
    pub scores: Vec<f32>,
}

impl LossScratch {
    /// Allocate for `n_entities` candidates and dimension `dim`.
    pub fn new(n_entities: usize, dim: usize) -> Self {
        LossScratch { q: vec![0.0; dim], dq: vec![0.0; dim], scores: vec![0.0; n_entities] }
    }
}

/// Triples per GEMM block in [`multiclass_block`] (two query rows each, so
/// 64 score rows per kernel call). Bounds the score block to
/// `64 × n_entities` floats while still amortising each streaming pass
/// over the entity table across the whole block.
pub const MULTICLASS_BLOCK: usize = 32;

/// Scratch buffers for the batched multi-class path, reused across blocks.
/// Also carries the [`KernelPolicy`] the block's GEMMs run under, so
/// training can A/B the relaxed tier without new function signatures.
pub struct MulticlassScratch {
    /// Query rows, `2·block × dim` (tail row `2i`, head row `2i+1`).
    queries: Vec<f32>,
    /// Score rows, `2·block × n_entities`; softmaxed then shifted in place.
    scores: Vec<f32>,
    /// `dL/dq` rows, `2·block × dim`.
    dq: Vec<f32>,
    /// Per-query conditioning-row gradient (`dim`).
    d_cond: Vec<f32>,
    /// Per-query relation-row gradient (`dim`).
    d_relrow: Vec<f32>,
    /// Kernel policy for the block's forward and backward GEMMs.
    policy: KernelPolicy,
}

impl MulticlassScratch {
    /// Allocate for `n_entities` candidates and dimension `dim` under the
    /// environment-resolved default policy
    /// ([`KernelPolicy::default_from_env`]).
    pub fn new(n_entities: usize, dim: usize) -> Self {
        MulticlassScratch::with_policy(n_entities, dim, KernelPolicy::default_from_env())
    }

    /// Allocate under an explicit [`KernelPolicy`].
    pub fn with_policy(n_entities: usize, dim: usize, policy: KernelPolicy) -> Self {
        let rows = 2 * MULTICLASS_BLOCK;
        MulticlassScratch {
            queries: vec![0.0; rows * dim],
            scores: vec![0.0; rows * n_entities],
            dq: vec![0.0; rows * dim],
            d_cond: vec![0.0; dim],
            d_relrow: vec![0.0; dim],
            policy,
        }
    }

    /// The kernel policy this scratch's GEMMs run under.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }
}

/// Batched multi-class loss over up to [`MULTICLASS_BLOCK`] triples: one
/// GEMM scores every `(h, r, ·)` and `(·, r, t)` query of the block against
/// the entity table, one batched transposed product computes every `dL/dq`,
/// and the per-triple backward passes then accumulate into `d_ent` /
/// `d_rel` in exactly the order the per-query path used (tail direction
/// then head direction, triple by triple). Returns the summed
/// cross-entropy (two directions per triple).
///
/// # Panics
/// Panics if `block` exceeds [`MULTICLASS_BLOCK`] triples.
pub fn multiclass_block(
    spec: &BlockSpec,
    block: &[Triple],
    ent: &Mat,
    rel: &Mat,
    d_ent: &mut Mat,
    d_rel: &mut Mat,
    scratch: &mut MulticlassScratch,
) -> f32 {
    assert!(block.len() <= MULTICLASS_BLOCK, "multiclass_block: block too large");
    let n = ent.rows();
    let dim = ent.cols();
    let dsub = dim / 4;
    let rows = 2 * block.len();

    // 1. Build the query block: tail query for (h, r), head query for (t, r).
    let queries = &mut scratch.queries[..rows * dim];
    for (i, tr) in block.iter().enumerate() {
        let (h, r, t) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
        spec.tail_query(
            ent.row(h),
            rel.row(r),
            &mut queries[(2 * i) * dim..(2 * i + 1) * dim],
            dsub,
        );
        spec.head_query(
            ent.row(t),
            rel.row(r),
            &mut queries[(2 * i + 1) * dim..(2 * i + 2) * dim],
            dsub,
        );
    }

    // 2. One GEMM scores every query row against the entity table.
    let scores = &mut scratch.scores[..rows * n];
    kg_linalg::gemm::gemm_nt_with(scratch.policy, queries, rows, dim, ent, scores);

    // 3. Per row: softmax, cross-entropy, and the `p - onehot` shift.
    let mut ce = 0.0f32;
    for (i, tr) in block.iter().enumerate() {
        for (row, target) in [(2 * i, tr.t.idx()), (2 * i + 1, tr.h.idx())] {
            let s = &mut scores[row * n..(row + 1) * n];
            kg_linalg::vecops::softmax_inplace(s);
            ce += -(s[target].max(1e-12)).ln();
            s[target] -= 1.0;
        }
    }

    // 4. Batched `dL/dq = entᵀ (p - onehot)` for every row at once.
    let dq = &mut scratch.dq[..rows * dim];
    kg_linalg::gemm::gemm_acc_t_with(scratch.policy, scores, rows, ent, dq);

    // 5. Per-triple accumulation, in the per-query path's write order.
    for (i, tr) in block.iter().enumerate() {
        let (h, r, t) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
        for (row, tail_direction, cond) in [(2 * i, true, h), (2 * i + 1, false, t)] {
            let s = &scores[row * n..(row + 1) * n];
            let q = &queries[row * dim..(row + 1) * dim];
            let dq_row = &dq[row * dim..(row + 1) * dim];
            // dL/dE += (p - onehot) ⊗ q
            d_ent.ger(1.0, s, q);
            kg_linalg::vecops::zero(&mut scratch.d_cond);
            kg_linalg::vecops::zero(&mut scratch.d_relrow);
            if tail_direction {
                spec.tail_query_backward(
                    ent.row(cond),
                    rel.row(r),
                    dq_row,
                    &mut scratch.d_cond,
                    &mut scratch.d_relrow,
                    dsub,
                );
            } else {
                spec.head_query_backward(
                    ent.row(cond),
                    rel.row(r),
                    dq_row,
                    &mut scratch.d_cond,
                    &mut scratch.d_relrow,
                    dsub,
                );
            }
            kg_linalg::vecops::axpy(1.0, &scratch.d_cond, d_ent.row_mut(cond));
            kg_linalg::vecops::axpy(1.0, &scratch.d_relrow, d_rel.row_mut(r));
        }
    }
    ce
}

/// One direction (tail- or head-prediction) of the multi-class loss.
///
/// Computes softmax cross-entropy of the `target` entity against all
/// entities, and accumulates:
/// * `d_cond` — gradient w.r.t. the conditioning entity row (head for
///   tail-prediction),
/// * `d_rel` — gradient w.r.t. the relation row,
/// * `d_ent` — dense gradient w.r.t. the whole entity table (the softmax
///   couples every entity; this is the rank-1 `p qᵀ` term of Lacroix et
///   al.'s full-softmax training).
///
/// Returns the cross-entropy.
#[allow(clippy::too_many_arguments)]
pub fn multiclass_direction(
    spec: &BlockSpec,
    tail_direction: bool,
    cond_row: &[f32],
    rel_row: &[f32],
    target: usize,
    ent: &Mat,
    d_cond: &mut [f32],
    d_rel: &mut [f32],
    d_ent: &mut Mat,
    scratch: &mut LossScratch,
) -> f32 {
    let dsub = cond_row.len() / 4;
    if tail_direction {
        spec.tail_query(cond_row, rel_row, &mut scratch.q, dsub);
    } else {
        spec.head_query(cond_row, rel_row, &mut scratch.q, dsub);
    }
    ent.gemv(&scratch.q, &mut scratch.scores);
    kg_linalg::vecops::softmax_inplace(&mut scratch.scores);
    let ce = -(scratch.scores[target].max(1e-12)).ln();
    // dL/dscores = p - onehot(target)
    scratch.scores[target] -= 1.0;
    // dL/dq = entᵀ (p - onehot)
    ent.gemv_t(&scratch.scores, &mut scratch.dq);
    // dL/dE += (p - onehot) ⊗ q
    d_ent.ger(1.0, &scratch.scores, &scratch.q);
    if tail_direction {
        spec.tail_query_backward(cond_row, rel_row, &scratch.dq, d_cond, d_rel, dsub);
    } else {
        spec.head_query_backward(cond_row, rel_row, &scratch.dq, d_cond, d_rel, dsub);
    }
    ce
}

/// Negative-sampling logistic loss for one triple: `softplus(-f(pos)) +
/// Σ_neg softplus(f(neg))`, gradients accumulated *sparsely* into rows of
/// `d_ent`/`d_rel` (no dense coupling — this is what makes the loss cheap).
///
/// `negatives` are (h, t) pairs sharing the positive's relation.
#[allow(clippy::too_many_arguments)]
pub fn neg_sampling_triple(
    spec: &BlockSpec,
    h: usize,
    r: usize,
    t: usize,
    negatives: &[(usize, usize)],
    ent: &Mat,
    rel: &Mat,
    d_ent: &mut Mat,
    d_rel: &mut Mat,
    scratch: &mut LossScratch,
) -> f32 {
    let dsub = ent.cols() / 4;
    let mut total = 0.0f32;
    let one = |hh: usize,
               tt: usize,
               label: f32,
               d_ent: &mut Mat,
               d_rel: &mut Mat,
               scratch: &mut LossScratch| {
        let h_row = ent.row(hh);
        let r_row = rel.row(r);
        let t_row = ent.row(tt);
        let f = spec.score(h_row, r_row, t_row, dsub);
        // L = softplus(-label · f);  dL/df = -label · σ(-label · f)
        let loss = kg_linalg::vecops::softplus(-label * f);
        let upstream = -label * kg_linalg::vecops::sigmoid(-label * f);
        // dL/dt = upstream · q(h, r)
        spec.tail_query(h_row, r_row, &mut scratch.q, dsub);
        kg_linalg::vecops::axpy(upstream, &scratch.q, d_ent.row_mut(tt));
        // dL/dh, dL/dr via the backward hook with dq = upstream · t
        for (dqi, ti) in scratch.dq.iter_mut().zip(t_row.iter()) {
            *dqi = upstream * ti;
        }
        // borrow dance: split disjoint rows through raw indexing
        let mut dh = vec![0.0f32; h_row.len()];
        let mut dr = vec![0.0f32; h_row.len()];
        spec.tail_query_backward(h_row, r_row, &scratch.dq, &mut dh, &mut dr, dsub);
        kg_linalg::vecops::axpy(1.0, &dh, d_ent.row_mut(hh));
        kg_linalg::vecops::axpy(1.0, &dr, d_rel.row_mut(r));
        loss
    };
    total += one(h, t, 1.0, d_ent, d_rel, scratch);
    for &(nh, nt) in negatives {
        total += one(nh, nt, -1.0, d_ent, d_rel, scratch);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_linalg::SeededRng;
    use kg_models::blm::classics;
    use kg_models::Embeddings;

    fn setup() -> (Embeddings, BlockSpec) {
        let mut rng = SeededRng::new(31);
        (Embeddings::init(8, 2, 8, &mut rng), classics::simple())
    }

    #[test]
    fn multiclass_ce_is_positive_and_finite() {
        let (emb, spec) = setup();
        let mut scratch = LossScratch::new(8, 8);
        let mut d_cond = vec![0.0f32; 8];
        let mut d_rel = vec![0.0f32; 8];
        let mut d_ent = Mat::zeros(8, 8);
        let ce = multiclass_direction(
            &spec,
            true,
            emb.ent.row(0),
            emb.rel.row(0),
            3,
            &emb.ent,
            &mut d_cond,
            &mut d_rel,
            &mut d_ent,
            &mut scratch,
        );
        assert!(ce.is_finite() && ce > 0.0);
        // gradients flowed
        assert!(d_cond.iter().any(|&v| v != 0.0));
        assert!(d_ent.as_slice().iter().any(|&v| v != 0.0));
    }

    /// Full finite-difference check of the multiclass gradient w.r.t. the
    /// conditioning row and the relation row.
    #[test]
    fn multiclass_gradient_matches_finite_differences() {
        let (emb, spec) = setup();
        let mut scratch = LossScratch::new(8, 8);
        let target = 5usize;
        let ce_of = |cond: &[f32], rel: &[f32]| {
            let mut s = LossScratch::new(8, 8);
            spec.tail_query(cond, rel, &mut s.q, 2);
            emb.ent.gemv(&s.q, &mut s.scores);
            kg_linalg::vecops::softmax_inplace(&mut s.scores);
            -(s.scores[target].max(1e-12)).ln()
        };
        let cond: Vec<f32> = emb.ent.row(2).to_vec();
        let rel: Vec<f32> = emb.rel.row(1).to_vec();
        let mut d_cond = vec![0.0f32; 8];
        let mut d_rel = vec![0.0f32; 8];
        let mut d_ent = Mat::zeros(8, 8);
        multiclass_direction(
            &spec,
            true,
            &cond,
            &rel,
            target,
            &emb.ent,
            &mut d_cond,
            &mut d_rel,
            &mut d_ent,
            &mut scratch,
        );
        let eps = 1e-2f32;
        for i in 0..8 {
            let mut cp = cond.clone();
            cp[i] += eps;
            let mut cm = cond.clone();
            cm[i] -= eps;
            let num = (ce_of(&cp, &rel) - ce_of(&cm, &rel)) / (2.0 * eps);
            assert!((num - d_cond[i]).abs() < 2e-2, "d_cond[{i}]: fd {num} vs bp {}", d_cond[i]);
            let mut rp = rel.clone();
            rp[i] += eps;
            let mut rm = rel.clone();
            rm[i] -= eps;
            let num = (ce_of(&cond, &rp) - ce_of(&cond, &rm)) / (2.0 * eps);
            assert!((num - d_rel[i]).abs() < 2e-2, "d_rel[{i}]: fd {num} vs bp {}", d_rel[i]);
        }
    }

    /// The dense entity gradient must also match finite differences —
    /// this exercises the rank-1 `p qᵀ` term. Note for the conditioning
    /// entity the total derivative adds the `d_cond` contribution.
    #[test]
    fn multiclass_entity_table_gradient_matches() {
        let (emb, spec) = setup();
        let mut scratch = LossScratch::new(8, 8);
        let target = 4usize;
        let cond_idx = 2usize;
        let ce_of = |ent: &Mat| {
            let mut s = LossScratch::new(8, 8);
            spec.tail_query(ent.row(cond_idx), emb.rel.row(0), &mut s.q, 2);
            ent.gemv(&s.q, &mut s.scores);
            kg_linalg::vecops::softmax_inplace(&mut s.scores);
            -(s.scores[target].max(1e-12)).ln()
        };
        let mut d_cond = vec![0.0f32; 8];
        let mut d_rel = vec![0.0f32; 8];
        let mut d_ent = Mat::zeros(8, 8);
        multiclass_direction(
            &spec,
            true,
            emb.ent.row(cond_idx),
            emb.rel.row(0),
            target,
            &emb.ent,
            &mut d_cond,
            &mut d_rel,
            &mut d_ent,
            &mut scratch,
        );
        let eps = 1e-2f32;
        for e in [0usize, 4, 7, 2] {
            for i in [0usize, 3, 7] {
                let mut ep = emb.ent.clone();
                ep.set(e, i, ep.get(e, i) + eps);
                let mut em = emb.ent.clone();
                em.set(e, i, em.get(e, i) - eps);
                let num = (ce_of(&ep) - ce_of(&em)) / (2.0 * eps);
                let mut bp = d_ent.get(e, i);
                if e == cond_idx {
                    bp += d_cond[i];
                }
                assert!((num - bp).abs() < 3e-2, "d_ent[{e},{i}]: fd {num} vs bp {bp}");
            }
        }
    }

    /// The batched block path must reproduce the per-triple reference
    /// (tail direction then head direction, triple by triple) bit for bit —
    /// same gradients, same write order, GEMM kernels bit-identical to the
    /// GEMVs they replace.
    #[test]
    fn multiclass_block_matches_per_triple_reference_bit_for_bit() {
        let (emb, spec) = setup();
        let triples: Vec<Triple> =
            vec![Triple::new(0, 0, 3), Triple::new(5, 1, 2), Triple::new(7, 0, 0)];

        // Reference: the pre-batching trainer step, one direction at a time.
        let mut d_ent_ref = Mat::zeros(8, 8);
        let mut d_rel_ref = Mat::zeros(2, 8);
        let mut scratch = LossScratch::new(8, 8);
        let mut ce_ref = 0.0f32;
        for tr in &triples {
            let (h, r, t) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
            for (tail_dir, cond, target) in [(true, h, t), (false, t, h)] {
                let mut d_cond = vec![0.0f32; 8];
                let mut d_relrow = vec![0.0f32; 8];
                ce_ref += multiclass_direction(
                    &spec,
                    tail_dir,
                    emb.ent.row(cond),
                    emb.rel.row(r),
                    target,
                    &emb.ent,
                    &mut d_cond,
                    &mut d_relrow,
                    &mut d_ent_ref,
                    &mut scratch,
                );
                kg_linalg::vecops::axpy(1.0, &d_cond, d_ent_ref.row_mut(cond));
                kg_linalg::vecops::axpy(1.0, &d_relrow, d_rel_ref.row_mut(r));
            }
        }

        let mut d_ent = Mat::zeros(8, 8);
        let mut d_rel = Mat::zeros(2, 8);
        // Pinned to Exact: bit-identity is the exact tier's contract and
        // must hold even when the environment defaults the policy to Fast.
        let mut mc = MulticlassScratch::with_policy(8, 8, KernelPolicy::Exact);
        let ce =
            multiclass_block(&spec, &triples, &emb.ent, &emb.rel, &mut d_ent, &mut d_rel, &mut mc);

        assert_eq!(d_ent.as_slice(), d_ent_ref.as_slice(), "entity gradients differ");
        assert_eq!(d_rel.as_slice(), d_rel_ref.as_slice(), "relation gradients differ");
        // ce is summed in a different grouping (f32), so allow rounding.
        assert!((ce - ce_ref).abs() < 1e-4, "ce {ce} vs reference {ce_ref}");
    }

    #[test]
    fn neg_sampling_loss_positive_and_grads_flow() {
        let (emb, spec) = setup();
        let mut scratch = LossScratch::new(8, 8);
        let mut d_ent = Mat::zeros(8, 8);
        let mut d_rel = Mat::zeros(2, 8);
        let loss = neg_sampling_triple(
            &spec,
            0,
            1,
            3,
            &[(0, 5), (6, 3)],
            &emb.ent,
            &emb.rel,
            &mut d_ent,
            &mut d_rel,
            &mut scratch,
        );
        assert!(loss.is_finite() && loss > 0.0);
        assert!(d_ent.as_slice().iter().any(|&v| v != 0.0));
        assert!(d_rel.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn neg_sampling_gradient_matches_finite_differences() {
        let (emb, spec) = setup();
        let dsub = 2;
        // single positive, no negatives: L = softplus(-f(h, r, t))
        let loss_of = |ent: &Mat| {
            let f = spec.score(ent.row(0), emb.rel.row(1), ent.row(3), dsub);
            kg_linalg::vecops::softplus(-f)
        };
        let mut scratch = LossScratch::new(8, 8);
        let mut d_ent = Mat::zeros(8, 8);
        let mut d_rel = Mat::zeros(2, 8);
        neg_sampling_triple(
            &spec,
            0,
            1,
            3,
            &[],
            &emb.ent,
            &emb.rel,
            &mut d_ent,
            &mut d_rel,
            &mut scratch,
        );
        let eps = 1e-2f32;
        for (e, i) in [(0usize, 1usize), (3, 6), (0, 7)] {
            let mut ep = emb.ent.clone();
            ep.set(e, i, ep.get(e, i) + eps);
            let mut em = emb.ent.clone();
            em.set(e, i, em.get(e, i) - eps);
            let num = (loss_of(&ep) - loss_of(&em)) / (2.0 * eps);
            let bp = d_ent.get(e, i);
            assert!((num - bp).abs() < 1e-2, "d_ent[{e},{i}]: fd {num} vs bp {bp}");
        }
    }
}

//! Parallel training of candidate structures.
//!
//! The paper trains "8 models in parallel" per greedy iteration
//! (Sec. V-A3); we fan candidates out over OS threads with a shared atomic
//! work queue (`std::thread::scope`, so the dataset can be borrowed, not
//! cloned). Every candidate trains with its own deterministic seed, so the
//! result is independent of thread interleaving.

use crate::config::TrainConfig;
use crate::trainer::train;
use kg_core::Dataset;
use kg_models::{BlmModel, BlockSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Train every spec on `ds`, using up to `n_threads` worker threads.
/// Returns models in the same order as `specs`.
///
/// Candidate `i` trains with seed `cfg.seed + i`, matching what a
/// sequential loop would use — parallelism never changes results.
pub fn train_many(
    specs: &[BlockSpec],
    ds: &Dataset,
    cfg: &TrainConfig,
    n_threads: usize,
) -> Vec<BlmModel> {
    assert!(n_threads > 0, "need at least one worker thread");
    if specs.is_empty() {
        return Vec::new();
    }
    let n_threads = n_threads.min(specs.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<BlmModel>> = (0..specs.len()).map(|_| None).collect();
    // Hand each worker a disjoint set of result slots via a mutex-free
    // split: collect (index, model) pairs per worker, then merge.
    let mut per_worker: Vec<Vec<(usize, BlmModel)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let cfg_i = cfg.with_seed(cfg.seed.wrapping_add(i as u64));
                    local.push((i, train(&specs[i], ds, &cfg_i)));
                }
                local
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("training worker panicked"));
        }
    });
    for (i, m) in per_worker.into_iter().flatten() {
        results[i] = Some(m);
    }
    results.into_iter().map(|m| m.expect("every slot trained")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::Triple;
    use kg_models::blm::classics;

    fn toy_dataset() -> Dataset {
        let train: Vec<Triple> = (0..20u32).map(|i| Triple::new(i, 0, (i + 1) % 20)).collect();
        Dataset::new("toy", train, vec![], vec![])
    }

    fn cfg() -> TrainConfig {
        TrainConfig { dim: 8, epochs: 3, batch_size: 8, ..Default::default() }
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = toy_dataset();
        let specs = vec![classics::distmult(), classics::complex(), classics::simple()];
        let par = train_many(&specs, &ds, &cfg(), 3);
        // sequential reference with the same per-candidate seeds
        for (i, spec) in specs.iter().enumerate() {
            let seq = train(spec, &ds, &cfg().with_seed(cfg().seed + i as u64));
            assert_eq!(par[i].emb.ent, seq.emb.ent, "candidate {i} differs");
        }
    }

    #[test]
    fn order_is_preserved() {
        let ds = toy_dataset();
        let specs = vec![classics::distmult(), classics::simple()];
        let out = train_many(&specs, &ds, &cfg(), 2);
        assert_eq!(out[0].spec, specs[0]);
        assert_eq!(out[1].spec, specs[1]);
    }

    #[test]
    fn empty_input_is_fine() {
        let ds = toy_dataset();
        assert!(train_many(&[], &ds, &cfg(), 4).is_empty());
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let ds = toy_dataset();
        let out = train_many(&[classics::distmult()], &ds, &cfg(), 8);
        assert_eq!(out.len(), 1);
    }
}

//! Parallel training of candidate structures.
//!
//! The paper trains "8 models in parallel" per greedy iteration
//! (Sec. V-A3); we fan candidates out over OS threads with a shared atomic
//! work queue (`std::thread::scope`, so the dataset can be borrowed, not
//! cloned). Every candidate trains with its own deterministic seed, so the
//! result is independent of thread interleaving.

use crate::config::TrainConfig;
use crate::trainer::{train, Trainer};
use kg_core::Dataset;
use kg_models::{BlmModel, BlockSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Clamp a per-candidate crew size so `candidates × inner_threads` never
/// exceeds the machine's logical cores — nesting the sharded training
/// crew ([`Trainer::threads`]) inside the candidate fan-out must not
/// oversubscribe. Pure policy arithmetic; `cores` comes from
/// [`std::thread::available_parallelism`] in [`clamp_inner_threads`].
pub fn clamp_inner_threads_for(candidates: usize, inner_threads: usize, cores: usize) -> usize {
    inner_threads.max(1).min((cores / candidates.max(1)).max(1))
}

/// [`clamp_inner_threads_for`] against this machine's logical core count
/// (1 when it cannot be determined).
pub fn clamp_inner_threads(candidates: usize, inner_threads: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    clamp_inner_threads_for(candidates, inner_threads, cores)
}

/// Train every spec on `ds`, using up to `n_threads` worker threads.
/// Returns models in the same order as `specs`.
///
/// Candidate `i` trains with seed `cfg.seed + i`, matching what a
/// sequential loop would use — parallelism never changes results.
pub fn train_many(
    specs: &[BlockSpec],
    ds: &Dataset,
    cfg: &TrainConfig,
    n_threads: usize,
) -> Vec<BlmModel> {
    assert!(n_threads > 0, "need at least one worker thread");
    if specs.is_empty() {
        return Vec::new();
    }
    let n_threads = n_threads.min(specs.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<BlmModel>> = (0..specs.len()).map(|_| None).collect();
    // Hand each worker a disjoint set of result slots via a mutex-free
    // split: collect (index, model) pairs per worker, then merge.
    let mut per_worker: Vec<Vec<(usize, BlmModel)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let cfg_i = cfg.with_seed(cfg.seed.wrapping_add(i as u64));
                    local.push((i, train(&specs[i], ds, &cfg_i)));
                }
                local
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("training worker panicked"));
        }
    });
    for (i, m) in per_worker.into_iter().flatten() {
        results[i] = Some(m);
    }
    results.into_iter().map(|m| m.expect("every slot trained")).collect()
}

/// [`train_many`] with each candidate itself training on a sharded crew
/// of `inner_threads` threads ([`Trainer::threads`]). The crew size is
/// clamped so concurrently-running candidates times their inner crews
/// never exceed the logical core count ([`clamp_inner_threads`]) —
/// requesting more inner threads than fit degrades gracefully instead of
/// oversubscribing. Results are independent of both thread knobs: the
/// outer fan-out fixes per-candidate seeds, the inner crew is
/// thread-count deterministic at its fixed shard grid.
pub fn train_many_crewed(
    specs: &[BlockSpec],
    ds: &Dataset,
    cfg: &TrainConfig,
    n_threads: usize,
    inner_threads: usize,
) -> Vec<BlmModel> {
    assert!(n_threads > 0, "need at least one worker thread");
    assert!(inner_threads > 0, "need at least one crew thread per candidate");
    if specs.is_empty() {
        return Vec::new();
    }
    let n_threads = n_threads.min(specs.len());
    let inner = clamp_inner_threads(n_threads, inner_threads);
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<BlmModel>> = (0..specs.len()).map(|_| None).collect();
    let mut per_worker: Vec<Vec<(usize, BlmModel)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let cfg_i = cfg.with_seed(cfg.seed.wrapping_add(i as u64));
                    let trainer = Trainer::new(cfg_i).threads(inner);
                    local.push((i, trainer.train(&specs[i], ds)));
                }
                local
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("training worker panicked"));
        }
    });
    for (i, m) in per_worker.into_iter().flatten() {
        results[i] = Some(m);
    }
    results.into_iter().map(|m| m.expect("every slot trained")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_core::Triple;
    use kg_models::blm::classics;

    fn toy_dataset() -> Dataset {
        let train: Vec<Triple> = (0..20u32).map(|i| Triple::new(i, 0, (i + 1) % 20)).collect();
        Dataset::new("toy", train, vec![], vec![])
    }

    fn cfg() -> TrainConfig {
        TrainConfig { dim: 8, epochs: 3, batch_size: 8, ..Default::default() }
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = toy_dataset();
        let specs = vec![classics::distmult(), classics::complex(), classics::simple()];
        let par = train_many(&specs, &ds, &cfg(), 3);
        // sequential reference with the same per-candidate seeds
        for (i, spec) in specs.iter().enumerate() {
            let seq = train(spec, &ds, &cfg().with_seed(cfg().seed + i as u64));
            assert_eq!(par[i].emb.ent, seq.emb.ent, "candidate {i} differs");
        }
    }

    #[test]
    fn order_is_preserved() {
        let ds = toy_dataset();
        let specs = vec![classics::distmult(), classics::simple()];
        let out = train_many(&specs, &ds, &cfg(), 2);
        assert_eq!(out[0].spec, specs[0]);
        assert_eq!(out[1].spec, specs[1]);
    }

    #[test]
    fn empty_input_is_fine() {
        let ds = toy_dataset();
        assert!(train_many(&[], &ds, &cfg(), 4).is_empty());
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let ds = toy_dataset();
        let out = train_many(&[classics::distmult()], &ds, &cfg(), 8);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn inner_thread_clamp_divides_the_cores() {
        // candidates × clamped ≤ cores, floored at one thread each
        assert_eq!(clamp_inner_threads_for(8, 4, 8), 1);
        assert_eq!(clamp_inner_threads_for(2, 4, 8), 4);
        assert_eq!(clamp_inner_threads_for(3, 4, 8), 2);
        assert_eq!(clamp_inner_threads_for(1, 16, 8), 8);
        // never above the request, never below one
        assert_eq!(clamp_inner_threads_for(2, 1, 8), 1);
        assert_eq!(clamp_inner_threads_for(16, 16, 1), 1);
        // degenerate inputs stay sane
        assert_eq!(clamp_inner_threads_for(0, 4, 8), 4);
        assert_eq!(clamp_inner_threads_for(4, 0, 8), 1);
        for candidates in 1..=10 {
            for inner in 1..=10 {
                for cores in 1..=12 {
                    let c = clamp_inner_threads_for(candidates, inner, cores);
                    assert!(c >= 1 && c <= inner.max(1));
                    assert!(c == 1 || candidates * c <= cores, "{candidates}×{c} > {cores}");
                }
            }
        }
    }

    #[test]
    fn crewed_fan_out_matches_plain_fan_out() {
        // The inner crew is thread-count deterministic, but it is a
        // different engine from the sequential trainer (fixed-grid f32
        // reassociation) — so compare the crewed fan-out against the same
        // crews driven directly, not against `train_many`.
        let ds = toy_dataset();
        let specs = vec![classics::distmult(), classics::complex()];
        let par = train_many_crewed(&specs, &ds, &cfg(), 2, 4);
        let inner = clamp_inner_threads(2, 4);
        for (i, spec) in specs.iter().enumerate() {
            let cfg_i = cfg().with_seed(cfg().seed + i as u64);
            let direct = Trainer::new(cfg_i).threads(inner).train(spec, &ds);
            assert_eq!(par[i].emb.ent, direct.emb.ent, "candidate {i} differs");
        }
    }
}

//! A Tree-structured Parzen Estimator (Bergstra et al. 2011).
//!
//! Two consumers, mirroring the paper:
//! * hyper-parameter optimisation (the paper uses HyperOpt/TPE to tune
//!   `lr`, `λ`, decay and batch size before the structure search,
//!   Sec. V-A2), and
//! * the "Bayes" structure-search baseline of Fig. 6 (categorical
//!   dimensions encode the f6 block choices).
//!
//! Implementation: per-dimension independent Parzen estimators. The
//! observation set splits at the γ-quantile into "good" and "bad"; new
//! candidates are drawn from the good density and ranked by the likelihood
//! ratio `l(x)/g(x)` (good over bad), exactly the HyperOpt scheme
//! specialised to diagonal densities.

use kg_linalg::SeededRng;
use serde::{Deserialize, Serialize};

/// One search dimension.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Param {
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform on `[lo, hi]` (both positive).
    LogUniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Categorical with `n` unordered choices, encoded as `0.0..n`.
    Choice {
        /// Number of choices.
        n: usize,
    },
}

impl Param {
    fn sample_prior(&self, rng: &mut SeededRng) -> f64 {
        match *self {
            Param::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            Param::LogUniform { lo, hi } => (rng.uniform_range(lo.ln(), hi.ln())).exp(),
            Param::Choice { n } => rng.below(n) as f64,
        }
    }
}

/// The optimizer state: the search space plus all observations.
#[derive(Debug, Clone)]
pub struct Tpe {
    space: Vec<Param>,
    /// (point, score); higher scores are better.
    observations: Vec<(Vec<f64>, f64)>,
    /// Random exploration before the model kicks in.
    n_startup: usize,
    /// Fraction of observations considered "good".
    gamma: f64,
    /// Candidates scored per suggestion.
    n_candidates: usize,
}

impl Tpe {
    /// Create an optimizer over `space`.
    pub fn new(space: Vec<Param>) -> Self {
        assert!(!space.is_empty(), "empty search space");
        Tpe { space, observations: Vec::new(), n_startup: 10, gamma: 0.25, n_candidates: 24 }
    }

    /// Override the startup-random count.
    pub fn with_startup(mut self, n: usize) -> Self {
        self.n_startup = n;
        self
    }

    /// Number of dimensions.
    pub fn n_dims(&self) -> usize {
        self.space.len()
    }

    /// Number of recorded observations.
    pub fn n_observations(&self) -> usize {
        self.observations.len()
    }

    /// Record an evaluated point.
    pub fn observe(&mut self, point: Vec<f64>, score: f64) {
        assert_eq!(point.len(), self.space.len(), "dimension mismatch");
        self.observations.push((point, score));
    }

    /// Best observation so far.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.observations.iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(p, s)| (p.as_slice(), *s))
    }

    /// Suggest the next point to evaluate.
    pub fn suggest(&self, rng: &mut SeededRng) -> Vec<f64> {
        if self.observations.len() < self.n_startup {
            return self.space.iter().map(|p| p.sample_prior(rng)).collect();
        }
        // split observations at the gamma quantile (higher = better)
        let mut sorted: Vec<usize> = (0..self.observations.len()).collect();
        sorted.sort_by(|&a, &b| self.observations[b].1.total_cmp(&self.observations[a].1));
        let n_good = ((self.observations.len() as f64 * self.gamma).ceil() as usize)
            .clamp(1, self.observations.len() - 1);
        let good: Vec<&Vec<f64>> =
            sorted[..n_good].iter().map(|&i| &self.observations[i].0).collect();
        let bad: Vec<&Vec<f64>> =
            sorted[n_good..].iter().map(|&i| &self.observations[i].0).collect();

        let mut best_point = Vec::new();
        let mut best_ratio = f64::NEG_INFINITY;
        for _ in 0..self.n_candidates {
            let mut point = Vec::with_capacity(self.space.len());
            let mut ratio = 0.0f64;
            for (d, param) in self.space.iter().enumerate() {
                let (x, r) = self.sample_dim(d, param, &good, &bad, rng);
                point.push(x);
                ratio += r;
            }
            if ratio > best_ratio {
                best_ratio = ratio;
                best_point = point;
            }
        }
        best_point
    }

    /// Sample one dimension from the good density; return (value,
    /// log-likelihood-ratio contribution).
    fn sample_dim(
        &self,
        d: usize,
        param: &Param,
        good: &[&Vec<f64>],
        bad: &[&Vec<f64>],
        rng: &mut SeededRng,
    ) -> (f64, f64) {
        match *param {
            Param::Choice { n } => {
                // smoothed categorical densities
                let hist = |obs: &[&Vec<f64>]| {
                    let mut h = vec![1.0f64; n]; // add-one smoothing
                    for o in obs {
                        let c = (o[d] as usize).min(n - 1);
                        h[c] += 1.0;
                    }
                    let s: f64 = h.iter().sum();
                    h.into_iter().map(|v| v / s).collect::<Vec<f64>>()
                };
                let l = hist(good);
                let g = hist(bad);
                // sample from l
                let u = rng.uniform();
                let mut acc = 0.0;
                let mut choice = n - 1;
                for (c, &p) in l.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        choice = c;
                        break;
                    }
                }
                (choice as f64, (l[choice] / g[choice]).ln())
            }
            Param::Uniform { lo, hi } | Param::LogUniform { lo, hi } => {
                let log_scale = matches!(param, Param::LogUniform { .. });
                let to_internal = |v: f64| if log_scale { v.ln() } else { v };
                let (ilo, ihi) = (to_internal(lo), to_internal(hi));
                let bw = ((ihi - ilo) / (good.len() as f64).sqrt()).max(1e-12);
                // Parzen density: mixture of gaussians at observed points
                let density = |obs: &[&Vec<f64>], x: f64| {
                    if obs.is_empty() {
                        return 1.0 / (ihi - ilo);
                    }
                    let mut p = 0.0f64;
                    for o in obs {
                        let z = (x - to_internal(o[d])) / bw;
                        p += (-0.5 * z * z).exp();
                    }
                    p / (obs.len() as f64 * bw * (2.0 * std::f64::consts::PI).sqrt()) + 1e-12
                };
                // sample from the good mixture
                let center = to_internal(good[rng.below(good.len())][d]);
                let x = (center + bw * rng.normal()).clamp(ilo, ihi);
                let ratio = (density(good, x) / density(bad, x)).ln();
                let v = if log_scale { x.exp() } else { x };
                (v, ratio)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// TPE should find the maximum of a smooth 1-D function faster than the
    /// prior would by luck.
    #[test]
    fn tpe_concentrates_on_the_optimum() {
        let mut rng = SeededRng::new(7);
        let f = |x: f64| -(x - 0.7) * (x - 0.7);
        let mut tpe = Tpe::new(vec![Param::Uniform { lo: 0.0, hi: 1.0 }]).with_startup(8);
        for _ in 0..60 {
            let p = tpe.suggest(&mut rng);
            let s = f(p[0]);
            tpe.observe(p, s);
        }
        let (best, _) = tpe.best().expect("observations exist");
        assert!((best[0] - 0.7).abs() < 0.1, "best x = {}", best[0]);
        // late suggestions cluster near the optimum
        let late: Vec<f64> = (0..16).map(|_| tpe.suggest(&mut rng)[0]).collect();
        let near = late.iter().filter(|&&x| (x - 0.7).abs() < 0.2).count();
        assert!(near >= 8, "only {near}/16 late suggestions near optimum");
    }

    #[test]
    fn categorical_dimension_prefers_good_choice() {
        let mut rng = SeededRng::new(8);
        // choice 2 is the best of 5
        let f = |c: usize| if c == 2 { 1.0 } else { 0.0 };
        let mut tpe = Tpe::new(vec![Param::Choice { n: 5 }]).with_startup(10);
        for _ in 0..50 {
            let p = tpe.suggest(&mut rng);
            let s = f(p[0] as usize);
            tpe.observe(p, s);
        }
        let late: Vec<usize> = (0..20).map(|_| tpe.suggest(&mut rng)[0] as usize).collect();
        let hits = late.iter().filter(|&&c| c == 2).count();
        assert!(hits >= 10, "only {hits}/20 suggestions picked the best choice");
    }

    #[test]
    fn log_uniform_respects_bounds() {
        let mut rng = SeededRng::new(9);
        let tpe = Tpe::new(vec![Param::LogUniform { lo: 1e-5, hi: 1e-1 }]);
        for _ in 0..100 {
            let p = tpe.suggest(&mut rng);
            assert!(p[0] >= 1e-5 * 0.999 && p[0] <= 1e-1 * 1.001, "out of range: {}", p[0]);
        }
    }

    #[test]
    fn best_tracks_maximum() {
        let mut tpe = Tpe::new(vec![Param::Uniform { lo: 0.0, hi: 1.0 }]);
        tpe.observe(vec![0.1], 1.0);
        tpe.observe(vec![0.2], 5.0);
        tpe.observe(vec![0.3], 3.0);
        let (p, s) = tpe.best().unwrap();
        assert_eq!(p[0], 0.2);
        assert_eq!(s, 5.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn observe_checks_dimensions() {
        let mut tpe = Tpe::new(vec![Param::Choice { n: 2 }]);
        tpe.observe(vec![0.0, 1.0], 0.0);
    }
}

//! The mini-batch trainer (Alg. 1 with the paper's choices).
//!
//! Per batch: accumulate dense entity/relation gradients (the multi-class
//! loss couples every entity through the softmax), fold in the L2 penalty,
//! take one Adagrad step, decay the learning rate per epoch. The
//! multi-class forward/backward runs through the batched scoring engine
//! ([`crate::loss::multiclass_block`]): blocks of triples share one GEMM
//! against the entity table instead of a GEMV per query. An optional
//! per-epoch callback receives the current model so callers can record
//! validation curves (Fig. 4) without this crate depending on evaluation.

use crate::config::{LossKind, TrainConfig};
use crate::loss::{
    multiclass_block, neg_sampling_triple, LossScratch, MulticlassScratch, MULTICLASS_BLOCK,
};
use kg_core::{Dataset, Triple};
use kg_linalg::{Adagrad, KernelPolicy, Mat, Optimizer, SeededRng};
use kg_models::{BlmModel, BlockSpec, Embeddings};

/// Information handed to the per-epoch callback.
#[derive(Debug, Clone, Copy)]
pub struct EpochInfo {
    /// 0-based epoch that just finished.
    pub epoch: usize,
    /// Mean training loss of that epoch.
    pub loss: f32,
    /// Wall-clock seconds since training started.
    pub seconds: f64,
}

/// Train `spec` on `ds.train`; convenience wrapper without callback.
pub fn train(spec: &BlockSpec, ds: &Dataset, cfg: &TrainConfig) -> BlmModel {
    train_with_callback(spec, ds, cfg, |_m: &BlmModel, _i: EpochInfo| ControlFlow::Continue)
}

/// Whether to keep training after an epoch callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Run the next epoch.
    Continue,
    /// Stop now and return the current model (early stopping — the paper
    /// trains "until converge", Sec. V-A2; callers implement the
    /// convergence criterion, e.g. patience on validation MRR).
    Stop,
}

/// Adapter so plain `()`-returning closures keep working as callbacks.
pub trait EpochCallback {
    /// Observe the epoch; decide whether to continue.
    fn on_epoch(&mut self, model: &BlmModel, info: EpochInfo) -> ControlFlow;
}

impl<F: FnMut(&BlmModel, EpochInfo) -> ControlFlow> EpochCallback for F {
    fn on_epoch(&mut self, model: &BlmModel, info: EpochInfo) -> ControlFlow {
        self(model, info)
    }
}

/// Train with a per-epoch callback `(model_so_far, info) -> ControlFlow`;
/// returning [`ControlFlow::Stop`] ends training early.
///
/// # Panics
/// Panics if `cfg` fails validation or the dataset has no training triples.
pub fn train_with_callback<F>(
    spec: &BlockSpec,
    ds: &Dataset,
    cfg: &TrainConfig,
    on_epoch: F,
) -> BlmModel
where
    F: EpochCallback,
{
    train_sequential(spec, ds, cfg, None, on_epoch)
}

/// The single-threaded training loop. With `policy: None` the multiclass
/// scratch resolves its kernel tier exactly as every release before the
/// [`Trainer`] existed ([`crate::loss::MulticlassScratch::new`]), keeping
/// the free functions byte-for-byte on their historical trajectory; an
/// explicit policy pins the tier for the whole run.
pub(crate) fn train_sequential<F>(
    spec: &BlockSpec,
    ds: &Dataset,
    cfg: &TrainConfig,
    policy: Option<KernelPolicy>,
    mut on_epoch: F,
) -> BlmModel
where
    F: EpochCallback,
{
    cfg.validate().expect("invalid training configuration");
    assert!(!ds.train.is_empty(), "cannot train on an empty training set");
    let mut rng = SeededRng::new(cfg.seed ^ 0xEE55_11AA_77CC_33BB);
    let emb = Embeddings::init(ds.n_entities, ds.n_relations, cfg.dim, &mut rng);
    let mut model = BlmModel::new(spec.clone(), emb);

    let n_ent = ds.n_entities;
    let n_rel = ds.n_relations;
    let dim = cfg.dim;
    let mut opt = Adagrad::new(n_ent * dim + n_rel * dim, cfg.lr, cfg.decay);
    let mut d_ent = Mat::zeros(n_ent, dim);
    let mut d_rel = Mat::zeros(n_rel, dim);
    // Allocate only the scratch the configured loss uses — the multiclass
    // score block alone is `64 × n_entities` floats.
    let (mut scratch, mut mc_scratch) = match cfg.loss {
        LossKind::MultiClass => {
            let mc = match policy {
                None => MulticlassScratch::new(n_ent, dim),
                Some(p) => MulticlassScratch::with_policy(n_ent, dim, p),
            };
            (None, Some(mc))
        }
        LossKind::NegSampling { .. } => (Some(LossScratch::new(n_ent, dim)), None),
    };
    let mut triple_block: Vec<Triple> = Vec::with_capacity(MULTICLASS_BLOCK);
    let mut order: Vec<usize> = (0..ds.train.len()).collect();
    let start = std::time::Instant::now();

    for epoch in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f64;
        let mut n_terms = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            d_ent.clear();
            d_rel.clear();
            match cfg.loss {
                // The all-entity softmax goes through the batched scoring
                // engine: blocks of triples share one GEMM forward and one
                // batched transposed product backward.
                LossKind::MultiClass => {
                    for chunk in batch.chunks(MULTICLASS_BLOCK) {
                        triple_block.clear();
                        triple_block.extend(chunk.iter().map(|&i| ds.train[i]));
                        epoch_loss += multiclass_block(
                            &model.spec,
                            &triple_block,
                            &model.emb.ent,
                            &model.emb.rel,
                            &mut d_ent,
                            &mut d_rel,
                            mc_scratch.as_mut().expect("multiclass scratch allocated"),
                        ) as f64;
                        n_terms += 2 * chunk.len();
                    }
                }
                LossKind::NegSampling { m } => {
                    for &i in batch {
                        let tr = ds.train[i];
                        let negatives: Vec<(usize, usize)> = (0..m)
                            .map(|_| {
                                let e = rng.below(n_ent);
                                if rng.coin() {
                                    (e, tr.t.idx())
                                } else {
                                    (tr.h.idx(), e)
                                }
                            })
                            .collect();
                        epoch_loss += neg_sampling_triple(
                            &model.spec,
                            tr.h.idx(),
                            tr.r.idx(),
                            tr.t.idx(),
                            &negatives,
                            &model.emb.ent,
                            &model.emb.rel,
                            &mut d_ent,
                            &mut d_rel,
                            scratch.as_mut().expect("neg-sampling scratch allocated"),
                        ) as f64;
                        n_terms += 1 + m;
                    }
                }
            }
            // N3 regularisation on the rows this batch touched (Lacroix et
            // al.: d|v|³/dv = 3·sign(v)·v²), weighted per appearance.
            if cfg.n3 > 0.0 {
                for &i in batch {
                    let tr = ds.train[i];
                    for row in [tr.h.idx(), tr.t.idx()] {
                        n3_grad(cfg.n3, model.emb.ent.row(row), d_ent.row_mut(row));
                    }
                    n3_grad(cfg.n3, model.emb.rel.row(tr.r.idx()), d_rel.row_mut(tr.r.idx()));
                }
            }
            // mean over the batch + L2 weight decay, then one Adagrad step
            let inv = 1.0 / batch.len() as f32;
            kg_linalg::vecops::scale(inv, d_ent.as_mut_slice());
            kg_linalg::vecops::scale(inv, d_rel.as_mut_slice());
            if cfg.l2 > 0.0 {
                kg_linalg::vecops::axpy(cfg.l2, model.emb.ent.as_slice(), d_ent.as_mut_slice());
                kg_linalg::vecops::axpy(cfg.l2, model.emb.rel.as_slice(), d_rel.as_mut_slice());
            }
            opt.update(0, model.emb.ent.as_mut_slice(), d_ent.as_slice());
            opt.update(n_ent * dim, model.emb.rel.as_mut_slice(), d_rel.as_slice());
        }
        opt.end_epoch();
        let info = EpochInfo {
            epoch,
            loss: (epoch_loss / n_terms.max(1) as f64) as f32,
            seconds: start.elapsed().as_secs_f64(),
        };
        if on_epoch.on_epoch(&model, info) == ControlFlow::Stop {
            break;
        }
    }
    model
}

/// Accumulate the N3 gradient `3·w·sign(v)·v²` of one embedding row.
pub(crate) fn n3_grad(weight: f32, row: &[f32], grad: &mut [f32]) {
    for (g, &v) in grad.iter_mut().zip(row.iter()) {
        *g += 3.0 * weight * v.signum() * v * v;
    }
}

/// Builder-style front door over the training engines.
///
/// The free [`train`] / [`train_with_callback`] functions keep their exact
/// historical behaviour; the `Trainer` adds the engine knobs on top:
///
/// * [`Trainer::threads`] routes multi-class training through the
///   cooperative sharded crew ([`crate::crew`]) — `threads(1)` runs the
///   same crew code path with an empty crew, so parallel results can be
///   pinned bit-for-bit against a single thread. Negative-sampling
///   configurations have no batched block step to shard and fall back to
///   the sequential loop (the thread knob is ignored for them).
/// * [`Trainer::policy`] pins the [`KernelPolicy`] for the whole run.
///   Unset, the policy resolves from the environment exactly like every
///   other entry point ([`KernelPolicy::default_from_env`], i.e. `Exact`
///   unless `KG_KERNEL_POLICY=fast`).
/// * [`Trainer::shards`] sets the fixed entity-shard grid of the crew.
///   The grid — not the thread count — determines where the gradient's
///   f32 sums reassociate, so results are a function of the grid and
///   identical for any `threads(n)`.
///
/// ```no_run
/// # use kg_train::{Trainer, TrainConfig};
/// # let (spec, ds): (kg_models::BlockSpec, kg_core::Dataset) = unimplemented!();
/// let model = Trainer::new(TrainConfig::default())
///     .threads(4)
///     .train(&spec, &ds);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainConfig,
    policy: Option<KernelPolicy>,
    threads: Option<usize>,
    shards: usize,
    panic_inject: Option<(usize, usize)>,
}

impl Trainer {
    /// A trainer with the given config and default engine knobs: no
    /// explicit thread count (sequential loop), environment-resolved
    /// kernel policy, [`crate::crew::DEFAULT_TRAIN_SHARDS`] shards.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer {
            cfg,
            policy: None,
            threads: None,
            shards: crate::crew::DEFAULT_TRAIN_SHARDS,
            panic_inject: None,
        }
    }

    /// Pin the kernel policy for the whole run.
    pub fn policy(mut self, policy: KernelPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Train multi-class batches with a cooperative crew of `n` threads
    /// (the calling thread works as the crew's lead, so `n = 1` spawns
    /// nothing).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "Trainer::threads requires at least one thread");
        self.threads = Some(n);
        self
    }

    /// Set the crew's fixed entity-shard grid size (capped at the entity
    /// count). Part of the deterministic layout: changing it changes
    /// where gradient sums reassociate.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "Trainer::shards requires at least one shard");
        self.shards = n;
        self
    }

    /// Test hook: make crew participant `worker` panic at the start of
    /// step `step`'s row phase. Exercises the step-tagged poison protocol.
    #[doc(hidden)]
    pub fn inject_panic_at(mut self, step: usize, worker: usize) -> Self {
        self.panic_inject = Some((step, worker));
        self
    }

    /// Train without a callback.
    pub fn train(&self, spec: &BlockSpec, ds: &Dataset) -> BlmModel {
        self.train_with_callback(spec, ds, |_m: &BlmModel, _i: EpochInfo| ControlFlow::Continue)
    }

    /// Train with a per-epoch callback; see [`train_with_callback`].
    pub fn train_with_callback<F>(&self, spec: &BlockSpec, ds: &Dataset, on_epoch: F) -> BlmModel
    where
        F: EpochCallback,
    {
        match (self.threads, self.cfg.loss) {
            (Some(threads), LossKind::MultiClass) => crate::crew::train_crew(
                spec,
                ds,
                &self.cfg,
                self.policy.unwrap_or_else(KernelPolicy::default_from_env),
                threads,
                self.shards,
                self.panic_inject,
                on_epoch,
            ),
            _ => train_sequential(spec, ds, &self.cfg, self.policy, on_epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_models::blm::classics;
    use kg_models::LinkPredictor;

    fn toy_dataset() -> Dataset {
        // deterministic ring + a symmetric relation
        let mut train = Vec::new();
        for i in 0..20u32 {
            train.push(Triple::new(i, 0, (i + 1) % 20));
        }
        for i in 0..10u32 {
            train.push(Triple::new(2 * i, 1, 2 * i + 1));
            train.push(Triple::new(2 * i + 1, 1, 2 * i));
        }
        Dataset::new("toy", train, vec![Triple::new(0, 0, 1)], vec![Triple::new(1, 0, 2)])
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig { dim: 16, epochs: 25, lr: 0.5, l2: 1e-5, batch_size: 16, ..Default::default() }
    }

    #[test]
    fn multiclass_loss_decreases() {
        let ds = toy_dataset();
        let mut losses = Vec::new();
        train_with_callback(&classics::simple(), &ds, &quick_cfg(), |_: &_, info: EpochInfo| {
            losses.push(info.loss);
            ControlFlow::Continue
        });
        assert_eq!(losses.len(), 25);
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss did not decrease: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
    }

    #[test]
    fn trained_model_ranks_training_tails_highly() {
        let ds = toy_dataset();
        let model = train(&classics::complex(), &ds, &quick_cfg());
        let mut scores = vec![0.0f32; 20];
        let mut hits = 0;
        for i in 0..20usize {
            model.score_tails(i, 0, &mut scores);
            let target = (i + 1) % 20;
            let better = scores.iter().filter(|&&s| s > scores[target]).count();
            if better < 3 {
                hits += 1;
            }
        }
        assert!(hits >= 15, "only {hits}/20 training edges ranked in top 3");
    }

    #[test]
    fn neg_sampling_loss_decreases() {
        let ds = toy_dataset();
        let cfg = TrainConfig { loss: LossKind::NegSampling { m: 4 }, lr: 0.1, ..quick_cfg() };
        let mut losses = Vec::new();
        train_with_callback(&classics::simple(), &ds, &cfg, |_: &_, info: EpochInfo| {
            losses.push(info.loss);
            ControlFlow::Continue
        });
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = toy_dataset();
        let a = train(&classics::distmult(), &ds, &quick_cfg());
        let b = train(&classics::distmult(), &ds, &quick_cfg());
        assert_eq!(a.emb.ent, b.emb.ent);
        let c = train(&classics::distmult(), &ds, &quick_cfg().with_seed(99));
        assert_ne!(c.emb.ent, a.emb.ent);
    }

    #[test]
    fn callback_sees_monotone_time() {
        let ds = toy_dataset();
        let mut last = -1.0f64;
        let cfg = TrainConfig { epochs: 5, ..quick_cfg() };
        train_with_callback(&classics::simple(), &ds, &cfg, |_: &_, info: EpochInfo| {
            assert!(info.seconds >= last);
            last = info.seconds;
            ControlFlow::Continue
        });
    }

    #[test]
    fn early_stopping_halts_training() {
        let ds = toy_dataset();
        let mut seen = 0usize;
        train_with_callback(&classics::simple(), &ds, &quick_cfg(), |_: &_, info: EpochInfo| {
            seen += 1;
            if info.epoch >= 4 {
                ControlFlow::Stop
            } else {
                ControlFlow::Continue
            }
        });
        assert_eq!(seen, 5, "training should stop after epoch index 4");
    }

    #[test]
    fn n3_regulariser_shrinks_embeddings() {
        let ds = toy_dataset();
        let plain = train(&classics::simple(), &ds, &TrainConfig { l2: 0.0, ..quick_cfg() });
        let reg =
            train(&classics::simple(), &ds, &TrainConfig { l2: 0.0, n3: 0.05, ..quick_cfg() });
        let norm = |m: &BlmModel| kg_linalg::vecops::norm2(m.emb.ent.as_slice());
        assert!(
            norm(&reg) < norm(&plain),
            "N3 should shrink embeddings: {} vs {}",
            norm(&reg),
            norm(&plain)
        );
        // and training still works
        let mut scores = vec![0.0f32; 20];
        reg.score_tails(0, 0, &mut scores);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_train_panics() {
        let ds = Dataset::new("empty", vec![], vec![], vec![]);
        train(&classics::simple(), &ds, &quick_cfg());
    }

    /// The headline semantic guarantee behind Tab. I: DistMult, whose g(r)
    /// is always symmetric, cannot distinguish (h, r, t) from (t, r, h),
    /// while ComplEx can — on an anti-symmetric relation ComplEx must win.
    #[test]
    fn complex_beats_distmult_on_antisymmetric_data() {
        // strictly one-directional chain relation
        let train: Vec<Triple> = (0..30u32).map(|i| Triple::new(i, 0, (i + 1) % 31)).collect();
        let ds = Dataset::new("anti", train.clone(), vec![], vec![]);
        let cfg = quick_cfg();
        let dm = train_fn(&classics::distmult(), &ds, &cfg);
        let cx = train_fn(&classics::complex(), &ds, &cfg);
        // Compare mean margin between the true direction and the reverse.
        let margin = |m: &BlmModel| {
            let mut acc = 0.0f32;
            for tr in &train {
                acc += m.score_triple(tr.h.idx(), tr.r.idx(), tr.t.idx())
                    - m.score_triple(tr.t.idx(), tr.r.idx(), tr.h.idx());
            }
            acc / train.len() as f32
        };
        let dm_margin = margin(&dm);
        let cx_margin = margin(&cx);
        assert!(dm_margin.abs() < 1e-3, "DistMult cannot have directional margin: {dm_margin}");
        assert!(cx_margin > 0.1, "ComplEx should learn direction: {cx_margin}");
    }

    fn train_fn(spec: &BlockSpec, ds: &Dataset, cfg: &TrainConfig) -> BlmModel {
        train(spec, ds, cfg)
    }
}

//! Equivalence suite for the cooperative sharded training engine.
//!
//! The contract under test (see `kg_train::crew`):
//!
//! * **Thread-count independence** — at a fixed shard grid, the crew's
//!   trained embeddings are byte-identical for any crew size, including
//!   oversubscribed crews (8 threads on however few cores CI has). The
//!   grid, not the thread count, decides where f32 sums reassociate.
//! * **Sequential closeness** — the crew differs from the sequential
//!   trainer only by that reassociation, so trained embeddings agree
//!   within FP noise; and with the trivial one-shard grid the merged
//!   query-side gradient is the full-table kernel's result bit for bit.
//! * **Poison, not deadlock** — a worker panic mid-epoch tags the step,
//!   unwinds the whole crew through its barriers and re-raises on the
//!   caller; no hang, whichever participant trips.

use kg_core::{Dataset, Triple};
use kg_linalg::KernelPolicy;
use kg_models::blm::classics;
use kg_models::BlmModel;
use kg_train::{ControlFlow, TrainConfig, Trainer};

/// Deterministic ring + symmetric pairs; two relations, 20 entities.
fn toy_dataset() -> Dataset {
    let mut train = Vec::new();
    for i in 0..20u32 {
        train.push(Triple::new(i, 0, (i + 1) % 20));
    }
    for i in 0..10u32 {
        train.push(Triple::new(i, 1, i + 10));
        train.push(Triple::new(i + 10, 1, i));
    }
    Dataset {
        name: "toy".into(),
        n_entities: 20,
        n_relations: 2,
        train,
        valid: vec![Triple::new(0, 0, 1)],
        test: vec![Triple::new(1, 0, 2)],
    }
}

/// Small but structurally busy: batch 36 over 40 triples gives two
/// batches per epoch (params republish mid-epoch), and the first batch
/// splits into a 32-triple block plus a ragged 4-triple flush block — so
/// every epoch exercises the mid-batch pipeline overlap (the lead reduces
/// step `s` while the crew scores step `s + 1`) as well as the
/// batch-boundary flush.
fn quick_cfg() -> TrainConfig {
    TrainConfig { dim: 16, epochs: 4, batch_size: 36, ..TrainConfig::default() }
}

fn assert_models_identical(a: &BlmModel, b: &BlmModel, what: &str) {
    let bits = |m: &BlmModel| {
        m.emb
            .ent
            .as_slice()
            .iter()
            .chain(m.emb.rel.as_slice().iter())
            .map(|v| v.to_bits())
            .collect::<Vec<u32>>()
    };
    assert_eq!(bits(a), bits(b), "{what}");
}

fn max_rel_err(a: &BlmModel, b: &BlmModel) -> f32 {
    a.emb
        .ent
        .as_slice()
        .iter()
        .chain(a.emb.rel.as_slice().iter())
        .zip(b.emb.ent.as_slice().iter().chain(b.emb.rel.as_slice().iter()))
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0f32, f32::max)
}

/// The headline guarantee: every shipped model family, several shard
/// grids (including one shard per entity and a grid coarser than the
/// crew), crews from solo to oversubscribed — all byte-identical to the
/// single-thread crew at the same grid.
#[test]
fn crew_is_thread_count_independent_across_families_and_grids() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    for (name, spec) in classics::all() {
        for shards in [1, 5, 16, 33] {
            let solo = Trainer::new(cfg).threads(1).shards(shards).train(&spec, &ds);
            for threads in [2, 3, 4, 8] {
                let crew = Trainer::new(cfg).threads(threads).shards(shards).train(&spec, &ds);
                assert_models_identical(
                    &solo,
                    &crew,
                    &format!("{name}: crew({threads}) diverged from crew(1) at {shards} shards"),
                );
            }
        }
    }
}

/// The crew and the sequential trainer share seed, init, shuffle and step
/// rule; they differ only where the crew's owner-split backward
/// reassociates f32 additions. Trained embeddings must agree within FP
/// noise on every family.
#[test]
fn crew_tracks_sequential_trainer_within_fp_noise() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    for (name, spec) in classics::all() {
        let seq = kg_train::train(&spec, &ds, &cfg);
        let crew = Trainer::new(cfg).threads(4).policy(KernelPolicy::Exact).train(&spec, &ds);
        let err = max_rel_err(&seq, &crew);
        assert!(err < 1e-3, "{name}: crew drifted {err:e} from the sequential trainer");
    }
}

/// Training still learns through the crew: the epoch losses it reports
/// decrease, and match the solo crew's exactly (the loss is summed from
/// bit-identical per-block cross-entropies in a fixed order).
#[test]
fn crew_loss_decreases_and_is_thread_count_independent() {
    let ds = toy_dataset();
    let cfg = TrainConfig { epochs: 10, ..quick_cfg() };
    let spec = classics::complex();
    let losses = |threads: usize| {
        let mut seen = Vec::new();
        Trainer::new(cfg).threads(threads).train_with_callback(
            &spec,
            &ds,
            |_m: &BlmModel, info: kg_train::EpochInfo| {
                seen.push(info.loss);
                ControlFlow::Continue
            },
        );
        seen
    };
    let solo = losses(1);
    let crew = losses(4);
    assert_eq!(solo.len(), 10);
    let first = *solo.first().expect("losses recorded");
    let last = *solo.last().expect("losses recorded");
    assert!(last < first, "loss should decrease through the crew: first {first}, last {last}");
    let (a, b): (Vec<u32>, Vec<u32>) =
        (solo.iter().map(|v| v.to_bits()).collect(), crew.iter().map(|v| v.to_bits()).collect());
    assert_eq!(a, b, "reported epoch losses diverged between crew sizes");
}

/// The Fast tier contracts multiply-adds but keeps the crew's layout
/// determinism: thread counts still agree bit-for-bit, and the relaxed
/// result stays within the documented noise band of the exact one.
#[test]
fn fast_policy_crew_is_deterministic_and_close_to_exact() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    let spec = classics::simple();
    let fast1 = Trainer::new(cfg).threads(1).policy(KernelPolicy::Fast).train(&spec, &ds);
    let fast4 = Trainer::new(cfg).threads(4).policy(KernelPolicy::Fast).train(&spec, &ds);
    assert_models_identical(&fast1, &fast4, "Fast crew diverged across thread counts");
    let exact = Trainer::new(cfg).threads(4).policy(KernelPolicy::Exact).train(&spec, &ds);
    let err = max_rel_err(&exact, &fast4);
    assert!(err < 5e-2, "Fast-policy training drifted {err:e} from Exact");
}

/// An explicitly pinned Exact policy on the sequential engine reproduces
/// the historical free-function trajectory byte for byte (guards the
/// `Trainer` refactor of the sequential path).
#[test]
fn pinned_exact_sequential_matches_free_function() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    let spec = classics::distmult();
    let legacy = kg_train::train(&spec, &ds, &cfg);
    let pinned = Trainer::new(cfg).policy(KernelPolicy::Exact).train(&spec, &ds);
    // Both resolve Exact unless the KG_* env knobs say otherwise; under
    // KG_KERNEL_POLICY=fast the free function follows the environment, so
    // only compare when the environment is at its default.
    if KernelPolicy::default_from_env() == KernelPolicy::Exact {
        assert_models_identical(&legacy, &pinned, "Trainer sequential path drifted from train()");
    }
}

/// Negative-sampling configs have no block step to shard: the thread knob
/// falls back to the sequential loop and must match it exactly.
#[test]
fn neg_sampling_falls_back_to_sequential() {
    let ds = toy_dataset();
    let cfg = TrainConfig { loss: kg_train::LossKind::NegSampling { m: 4 }, ..quick_cfg() };
    let spec = classics::distmult();
    let seq = kg_train::train(&spec, &ds, &cfg);
    let via_trainer = Trainer::new(cfg).threads(4).train(&spec, &ds);
    assert_models_identical(&seq, &via_trainer, "neg-sampling fallback drifted");
}

/// A worker panicking mid-epoch (step 4 of ~12, a spawned worker, not the
/// lead) poisons the step, unwinds the whole crew through its barriers
/// and re-raises on the calling thread — the test would hang instead of
/// pass if any participant were left at a barrier.
#[test]
#[should_panic(expected = "train crew grenade tripped")]
fn mid_epoch_worker_panic_unwinds_without_deadlock() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    let spec = classics::complex();
    Trainer::new(cfg).threads(4).inject_panic_at(4, 2).train(&spec, &ds);
}

/// Same protocol when the lead itself trips mid-epoch.
#[test]
#[should_panic(expected = "train crew grenade tripped")]
fn mid_epoch_lead_panic_unwinds_without_deadlock() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    let spec = classics::complex();
    Trainer::new(cfg).threads(4).inject_panic_at(3, 0).train(&spec, &ds);
}

/// A panicking epoch callback must also unwind the crew cleanly.
#[test]
#[should_panic(expected = "callback bailed")]
fn callback_panic_unwinds_without_deadlock() {
    let ds = toy_dataset();
    let cfg = quick_cfg();
    let spec = classics::complex();
    Trainer::new(cfg).threads(4).train_with_callback(
        &spec,
        &ds,
        |_m: &BlmModel, info: kg_train::EpochInfo| {
            assert!(info.epoch < 1, "callback bailed");
            ControlFlow::Continue
        },
    );
}

//! Vendored, registry-free stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple strategies, `prop_map`,
//! `prop::collection::vec`, `prop::bool::ANY`, `prop::array::uniform4`,
//! `prop::sample::select`, the `prop_assert*` family, `prop_assume!` and
//! `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the
//! test body's source position), so failures are reproducible run-to-run.
//! There is no shrinking: the failing inputs are printed via `Debug`
//! instead, which the small strategies used here keep readable.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed — the property is falsified.
    Fail(String),
    /// A `prop_assume!` rejected the inputs — skip the case.
    Reject,
}

impl TestCaseError {
    /// Failure with a rendered message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Rejection (filtered inputs).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic split-mix style RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of random values — the vendored analogue of proptest's
/// `Strategy` (no shrinking, so only generation is modelled).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4),);

/// Always-this-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Namespaced helper strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Size bounds for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        /// Strategy for `Vec<T>` with sizes drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let n = self.size.lo + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::*;

        /// Strategy for `[T; 4]` drawing each element from `element`.
        pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
            Uniform4 { element }
        }

        /// Strategy returned by [`uniform4`].
        pub struct Uniform4<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for Uniform4<S> {
            type Value = [S::Value; 4];

            fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
                [
                    self.element.generate(rng),
                    self.element.generate(rng),
                    self.element.generate(rng),
                    self.element.generate(rng),
                ]
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::*;

        /// Pick one element of `options` uniformly.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select { options }
        }

        /// Strategy returned by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property; on failure the case's inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Assert two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop_name(x in 0u32..10, v in prop::collection::vec(0f32..1.0, 3..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one plain `#[test]` per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed from the property's source location so every property
            // explores a different, but run-to-run stable, input stream.
            let seed = (line!() as u64) << 32 | column!() as u64;
            let mut rng = $crate::TestRng::new(seed ^ 0xA076_1D64_78BD_642F);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases
                    );
                }
                let __vals = ($( $crate::Strategy::generate(&($strat), &mut rng), )+);
                let rendered = format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &__vals
                );
                let ($($arg,)+) = __vals;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} falsified (case {}):\n{}\n{}",
                            stringify!($name), accepted + 1, rendered, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.5f32..2.5, b in prop::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            let _: bool = b;
        }

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn map_and_select_compose(
            s in prop::sample::select(vec![10usize, 20, 30]).prop_map(|n| n + 1)
        ) {
            prop_assert!(s == 11 || s == 21 || s == 31);
        }

        #[test]
        fn uniform4_generates_arrays(a in prop::array::uniform4(0u8..2)) {
            prop_assert_eq!(a.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn assume_rejects_and_recovers(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(5);
        let mut b = crate::TestRng::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Vendored, registry-free stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this crate provides the subset of serde the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` on plain (non-generic) structs and
//! enums, routed through an owned JSON-like [`Value`] data model that the
//! sibling `serde_json` shim renders and parses.
//!
//! The public trait names and the derive re-exports match real serde, so
//! swapping the real crates back in later is a Cargo.toml-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Owned data-model value — the meeting point of `Serialize`,
/// `Deserialize` and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of a `Value::Map` by key.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// View as a sequence of exactly `n` elements.
    pub fn seq_of_len(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(DeError::new(format!(
                "expected sequence of length {n}, found length {}",
                items.len()
            ))),
            other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// New error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to an owned data-model value.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a data-model value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

fn int_from_value(v: &Value, what: &str) -> Result<i128, DeError> {
    match v {
        Value::Int(i) => Ok(*i as i128),
        Value::UInt(u) => Ok(*u as i128),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 2e18 => Ok(*f as i128),
        other => Err(DeError::new(format!("expected {what}, found {}", other.kind()))),
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = int_from_value(v, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = int_from_value(v, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // serde_json renders non-finite floats as null; accept it back.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected f64, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.seq_of_len(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_of_len(N)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let back = Vec::<Option<u8>>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1.0f32, 2.0, 3.0];
        let back = <[f32; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(v.field("a").is_ok());
        let err = v.field("b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}

//! Vendored `#[derive(Serialize, Deserialize)]` for the offline build.
//!
//! Supports exactly what this workspace declares: non-generic structs
//! (named, tuple, unit) and non-generic enums whose variants are unit,
//! tuple or struct shaped. Field/variant attributes are ignored (the
//! workspace uses none), generics are rejected with a clear error.
//!
//! The macro parses the raw token stream by hand (no `syn`/`quote`
//! available offline) and emits impls of the data-model traits in the
//! sibling vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one parsed field-bearing body.
enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    body: Body,
}

/// Parsed derive input.
enum Input {
    Struct { name: String, body: Body },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, body } => gen_struct_serialize(name, body),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, body } => gen_struct_deserialize(name, body),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_top_level_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                None => Body::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Input::Struct { name, body }
        }
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Input::Enum { name, variants: parse_variants(group) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` then the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        // Consume the type up to a top-level comma (angle-bracket aware).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count fields of a tuple struct / tuple variant by top-level commas.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut fields = 1usize;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_top_level_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive (vendored): explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_to_value(fields: &[String], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_struct_serialize(name: &str, body: &Body) -> String {
    let value_expr = match body {
        Body::Named(fields) => named_to_value(fields, "&self."),
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {value_expr} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, body: &Body) -> String {
    let build_expr = match body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!("{name} {{ {} }}", inits.join(", "))
        }
        Body::Tuple(1) => format!("{name}(::serde::Deserialize::from_value(v)?)"),
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!("{{ let items = v.seq_of_len({n})?; {name}({}) }}", inits.join(", "))
        }
        Body::Unit => name.to_string(),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({build_expr})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.body {
                Body::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                ),
                Body::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vn}({binders}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})])",
                        binders = binds.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let inner_entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                              ::serde::Value::Map(::std::vec![{inner}]))])",
                        binders = fields.join(", "),
                        inner = inner_entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
         }}",
        arms = arms.join(",\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.body, Body::Unit))
        .map(|v| format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
        .collect();
    let keyed_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            let expr = match &v.body {
                Body::Unit => return None,
                Body::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?))"
                ),
                Body::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "{{ let items = inner.seq_of_len({n})?; \
                             ::std::result::Result::Ok({name}::{vn}({})) }}",
                        inits.join(", ")
                    )
                }
                Body::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}::{vn} {{ {} }})", inits.join(", "))
                }
            };
            Some(format!("\"{vn}\" => {expr},"))
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\n\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (key, inner) = &entries[0];\n\
                         match key.as_str() {{\n\
                             {keyed_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\n\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::new(\n\
                         \"expected {name} variant as string or single-key map\")),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        keyed_arms = keyed_arms.join("\n")
    )
}

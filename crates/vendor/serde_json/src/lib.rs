//! Vendored, registry-free stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`serde::Value`] data
//! model as JSON. Covers the workspace's needs: `to_string`,
//! `to_string_pretty` and `from_str` over derived types, with exact f32/f64
//! round-tripping (shortest-representation printing, as `{:?}` guarantees).

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON error (serialisation never fails here; parsing can).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset the parser failed at (0 for data-model errors).
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string(), 0)
    }
}

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialise to human-readable indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a JSON document into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value", p.pos));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest string that round-trips the f64.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!("unexpected byte `{}`", b as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{kw}`"), self.pos))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc =
                        self.peek().ok_or_else(|| Error::new("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate", self.pos));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid codepoint", self.pos))?,
                            );
                        }
                        other => {
                            return Err(Error::new(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string", self.pos)),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1e-7, 3.5, -2.25, 1e300, 0.30000000000000004] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
        for &x in &[0.1f32, 1e-7, 3.5, f32::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn vec_and_nested_round_trip() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![], vec![-0.5]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}

//! Case study (after Sec. V-B2): break link-prediction quality down by
//! relation pattern to see *why* a scoring function wins — DistMult's
//! always-symmetric g(r) is fine for symmetric relations but gives away
//! ranks on anti-symmetric ones, which ComplEx handles.
//!
//! ```sh
//! cargo run --release --example case_study
//! ```

use kg_core::reltype::{RelationKind, RelationProfile};
use kg_core::{FilterIndex, RelationId};
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::evaluate_per_relation;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn main() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 9);
    let profile = RelationProfile::classify(&ds.all_triples(), ds.n_relations);
    let filter = FilterIndex::from_dataset(&ds);
    let cfg = TrainConfig {
        dim: 32,
        epochs: 40,
        lr: 0.3,
        l2: 1e-5,
        batch_size: 32,
        ..Default::default()
    };

    println!("dataset: {} — per-relation test MRR by model\n", ds.name);
    println!("{:<6} {:<15} {:>9} {:>9} {:>8}", "rel", "pattern", "DistMult", "ComplEx", "#queries");

    let dm = train(&classics::distmult(), &ds, &cfg);
    let cx = train(&classics::complex(), &ds, &cfg);
    let dm_per = evaluate_per_relation(&dm, &ds.test, &filter, ds.n_relations);
    let cx_per = evaluate_per_relation(&cx, &ds.test, &filter, ds.n_relations);

    let mut by_kind: std::collections::BTreeMap<&str, (f64, f64, usize)> = Default::default();
    for r in 0..ds.n_relations {
        let kind = match profile.kind(RelationId(r as u32)) {
            RelationKind::Symmetric => "symmetric",
            RelationKind::AntiSymmetric => "anti-symmetric",
            RelationKind::Inverse => "inverse",
            RelationKind::General => "general",
        };
        let (d, c) = (&dm_per[r], &cx_per[r]);
        if d.n_queries > 0 {
            println!("r{:<5} {:<15} {:>9.3} {:>9.3} {:>8}", r, kind, d.mrr, c.mrr, d.n_queries);
            let e = by_kind.entry(kind).or_insert((0.0, 0.0, 0));
            e.0 += d.mrr * d.n_queries as f64;
            e.1 += c.mrr * c.n_queries as f64;
            e.2 += d.n_queries;
        }
    }

    println!("\naggregate by pattern:");
    println!("{:<15} {:>9} {:>9}", "pattern", "DistMult", "ComplEx");
    for (kind, (d, c, n)) in by_kind {
        println!("{:<15} {:>9.3} {:>9.3}", kind, d / n as f64, c / n as f64);
    }
    println!(
        "\nexpected shape: comparable on symmetric relations, ComplEx ahead on\n\
         anti-symmetric ones (Tab. I / Proposition 1)."
    );
}

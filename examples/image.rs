//! Model images: train a model, write it to a memory-mappable image,
//! map it back with zero copies, and serve a query from the mapping.
//!
//! ```sh
//! cargo run --release --example image
//! ```

use kg_datagen::{preset, Preset, Scale};
use kg_eval::two_stage::{two_stage_top_k_tails, TwoStageConfig};
use kg_eval::{evaluate_two_stage, quantise_scorer};
use kg_models::{blm::classics, write_model_image, ImageBlmModel, LinkPredictor};
use kg_serve::KgEngine;
use kg_train::{train, TrainConfig};

fn main() {
    // 1. A reproducible tiny KG and a trained SimplE-structured model.
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 42);
    let cfg = TrainConfig { dim: 32, epochs: 25, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("training SimplE: d={} epochs={} lr={}", cfg.dim, cfg.epochs, cfg.lr);
    let model = train(&classics::simple(), &ds, &cfg);

    // 2. Snapshot it as a model image: one file holding the f32 tables,
    //    the i8 quantised mirror, and the scoring structure — checksummed,
    //    64-byte aligned, ready to map.
    let path = std::env::temp_dir().join(format!("autosf-example-{}.kgt", std::process::id()));
    write_model_image(&model, &path).expect("write image");
    let file_len = std::fs::metadata(&path).expect("stat").len();
    println!("\nimage written: {} ({file_len} bytes)", path.display());

    // 3. Map it back. `open` validates the header only — O(header), no
    //    table reads — so a multi-GiB model is serving-ready instantly.
    let mapped = ImageBlmModel::open(&path).expect("map image");
    mapped.image().verify().expect("payload checksum");
    println!(
        "mapped: {} entities × d={}, spec {}",
        mapped.n_entities(),
        mapped.dim(),
        mapped.spec().formula()
    );

    // 4. Serve straight from the mapping: the engine's answers are
    //    bit-identical to serving the in-memory model, because the image
    //    scorer reuses the same kernels over the mapped segments.
    let engine = KgEngine::builder(mapped, &ds).threads(4).build();
    let tr = ds.test[0];
    println!(
        "\n(h={}, r={}, t={}): score {:.4}, filtered tail rank {}",
        tr.h.idx(),
        tr.r.idx(),
        tr.t.idx(),
        engine.score(tr.h.idx(), tr.r.idx(), tr.t.idx()),
        engine.rank_tail(tr.h.idx(), tr.r.idx(), tr.t.idx()),
    );
    println!(
        "top-5 tails for (h={}, r={}): {:?}",
        tr.h.idx(),
        tr.r.idx(),
        engine.top_k_tails(tr.h.idx(), tr.r.idx(), 5)
    );

    // 5. The image also carries the quantised coarse tier, so two-stage
    //    ranking runs on it zero-copy: score everything in i8, keep top-C
    //    candidates, rescore the survivors with the exact f32 kernels.
    let mapped = ImageBlmModel::open(&path).expect("map image again");
    let filter = kg_core::FilterIndex::from_dataset(&ds);
    let cfg = TwoStageConfig::new(64).with_threads(4);
    let two = evaluate_two_stage(&mapped, mapped.quant(), &ds.test, &filter, cfg);
    println!(
        "\ntwo-stage @C=64 over {} test queries: MRR {:.3}, {} of {} answers certified exact",
        two.metrics.n_queries, two.metrics.mrr, two.certified, two.metrics.n_queries,
    );
    let top = two_stage_top_k_tails(&mapped, mapped.quant(), tr.h.idx(), tr.r.idx(), 5, 64);
    println!(
        "two-stage top-5 tails (certified themselves exact: {}): {:?}",
        top.certified, top.entries
    );

    // The same coarse tier built from the in-memory model gives the same
    // machinery to models that never touched disk.
    let _owned_tier = quantise_scorer(&mapped);

    std::fs::remove_file(&path).ok();
}

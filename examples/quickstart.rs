//! Quickstart: generate a synthetic KG, train a SimplE-structured bilinear
//! model, and evaluate filtered link prediction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kg_core::{DatasetStats, FilterIndex};
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::evaluate_parallel;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn main() {
    // 1. A WN18RR-like knowledge graph (seeded — fully reproducible).
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 42);
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::of(&ds).row());

    // 2. Train SimplE (one of the human-designed scoring functions the
    //    AutoSF search space unifies) with the multi-class loss + Adagrad.
    let cfg = TrainConfig { dim: 32, epochs: 25, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("\ntraining SimplE: d={} epochs={} lr={}", cfg.dim, cfg.epochs, cfg.lr);
    let model = train(&classics::simple(), &ds, &cfg);

    // 3. Filtered link prediction on the test split.
    let filter = FilterIndex::from_dataset(&ds);
    let metrics = evaluate_parallel(&model, &ds.test, &filter, 4);
    println!(
        "\ntest: MRR {:.3}  MR {:.1}  Hits@1 {:.1}%  Hits@10 {:.1}%  ({} queries)",
        metrics.mrr,
        metrics.mr,
        metrics.hits1 * 100.0,
        metrics.hits10 * 100.0,
        metrics.n_queries
    );

    // 4. The structure we just trained, drawn the way the paper draws g(r).
    println!("\nSimplE as a unified block matrix (Fig. 1d):");
    print!("{}", classics::simple().render());
    println!("formula: {}", classics::simple().formula());
}

//! Quickstart: generate a synthetic KG, train a SimplE-structured bilinear
//! model, and serve filtered link prediction through the [`KgEngine`]
//! facade.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kg_core::DatasetStats;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::RankMetrics;
use kg_models::blm::classics;
use kg_serve::KgEngine;
use kg_train::{train, TrainConfig};

fn main() {
    // 1. A WN18RR-like knowledge graph (seeded — fully reproducible).
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 42);
    println!("{}", DatasetStats::header());
    println!("{}", DatasetStats::of(&ds).row());

    // 2. Train SimplE (one of the human-designed scoring functions the
    //    AutoSF search space unifies) with the multi-class loss + Adagrad.
    let cfg = TrainConfig { dim: 32, epochs: 25, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("\ntraining SimplE: d={} epochs={} lr={}", cfg.dim, cfg.epochs, cfg.lr);
    let model = train(&classics::simple(), &ds, &cfg);

    // 3. Serve the trained model: the engine batches incoming single
    //    queries into GEMM blocks and shards them across 4 workers, with
    //    answers bit-identical to the per-query reference.
    let engine = KgEngine::builder(model, &ds).threads(4).block(64).build();

    // Filtered link prediction on the test split, one request per query —
    // submit everything up front, then fold the ranks into the metrics.
    let tickets: Vec<_> = ds
        .test
        .iter()
        .map(|tr| {
            (
                engine.submit_rank_tail(tr.h.idx(), tr.r.idx(), tr.t.idx()).expect("admitted"),
                engine.submit_rank_head(tr.h.idx(), tr.r.idx(), tr.t.idx()).expect("admitted"),
            )
        })
        .collect();
    let mut metrics = RankMetrics::zero();
    for (tail, head) in tickets {
        metrics.accumulate(tail.wait());
        metrics.accumulate(head.wait());
    }
    let metrics = metrics.normalised();
    println!(
        "\ntest: MRR {:.3}  MR {:.1}  Hits@1 {:.1}%  Hits@10 {:.1}%  ({} queries)",
        metrics.mrr,
        metrics.mr,
        metrics.hits1 * 100.0,
        metrics.hits10 * 100.0,
        metrics.n_queries,
    );

    // 4. Request-level serving: complete one test query.
    let tr = ds.test[0];
    println!(
        "\ntop-5 tails for (h={}, r={}): {:?}",
        tr.h.idx(),
        tr.r.idx(),
        engine.top_k_tails(tr.h.idx(), tr.r.idx(), 5)
    );

    // 5. The structure we just trained, drawn the way the paper draws g(r).
    println!("\nSimplE as a unified block matrix (Fig. 1d):");
    print!("{}", classics::simple().render());
    println!("formula: {}", classics::simple().formula());
}

//! Analyse the relation-pattern census of the five benchmark-like
//! datasets — the reproduction of Tab. III's right half, and the kind of
//! KG analysis the paper's case study (Sec. V-B2) builds on.
//!
//! ```sh
//! cargo run --release --example relation_analysis
//! ```

use kg_core::reltype::{RelationKind, RelationProfile};
use kg_core::{DatasetStats, RelationId};
use kg_datagen::{preset, Preset, Scale};

fn main() {
    println!("{}", DatasetStats::header());
    for p in Preset::ALL {
        let ds = preset(p, Scale::Tiny, 2024);
        println!("{}", DatasetStats::of(&ds).row());
    }

    // Drill into one dataset: per-relation classification with inverse
    // partners, as the paper uses to explain which SF wins where.
    let ds = preset(Preset::Wn18Like, Scale::Tiny, 2024);
    let profile = RelationProfile::classify(&ds.all_triples(), ds.n_relations);
    println!("\nper-relation classification of {}:", ds.name);
    for r in 0..ds.n_relations {
        let rid = RelationId(r as u32);
        let kind = match profile.kind(rid) {
            RelationKind::Symmetric => "symmetric",
            RelationKind::AntiSymmetric => "anti-symmetric",
            RelationKind::Inverse => "inverse",
            RelationKind::General => "general",
        };
        match profile.partner(rid) {
            Some(p) => println!("  r{r:<3} {kind:<15} (inverse of r{})", p.0),
            None => println!("  r{r:<3} {kind:<15}"),
        }
    }
    println!(
        "\nTab. II: symmetric relations need g(r) = g(r)ᵀ, anti-symmetric need \
         g(r) = -g(r)ᵀ, inverse pairs need g(r) = g(r')ᵀ — the census above \
         is what the searched scoring function has to accommodate."
    );
}

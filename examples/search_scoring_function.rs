//! Run the AutoSF progressive greedy search on a synthetic KG and compare
//! the discovered scoring function against the human-designed baselines.
//!
//! ```sh
//! cargo run --release --example search_scoring_function
//! ```

use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use kg_core::FilterIndex;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::evaluate_parallel;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn main() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 7);
    println!("dataset: {} (|E|={}, |R|={})", ds.name, ds.n_entities, ds.n_relations);

    let tcfg = TrainConfig { dim: 32, epochs: 15, lr: 0.3, l2: 1e-4, ..Default::default() };
    let gcfg =
        GreedyConfig { b_max: 8, n_candidates: 32, k1: 4, k2: 6, rounds: 2, ..Default::default() };

    // Search: train candidates on S_tra, select by validation MRR.
    let mut driver = SearchDriver::new(&ds, tcfg, 4);
    let outcome = GreedySearch::new(gcfg).run(&mut driver);
    println!(
        "\nsearch done: {} models trained in {:.1}s",
        driver.models_trained(),
        driver.elapsed()
    );
    println!("best validation MRR: {:.3}", outcome.best_mrr);
    println!("\nsearched scoring function (Fig. 5 style):");
    print!("{}", outcome.best_spec.render());
    println!("formula: {}", outcome.best_spec.formula());

    // Final comparison on the *test* split, never touched by the search.
    let filter = FilterIndex::from_dataset(&ds);
    println!("\n{:<12} {:>8} {:>8} {:>8}", "model", "MRR", "H@1", "H@10");
    for (name, spec) in classics::all().into_iter().chain([("AutoSF", outcome.best_spec.clone())]) {
        let model = train(&spec, &ds, &tcfg);
        let m = evaluate_parallel(&model, &ds.test, &filter, 4);
        println!(
            "{:<12} {:>8.3} {:>7.1}% {:>7.1}%",
            name,
            m.mrr,
            m.hits1 * 100.0,
            m.hits10 * 100.0
        );
    }
}

//! Online serving: train a model once, then answer single link-prediction
//! requests from many concurrent clients through the [`KgEngine`] facade —
//! the query-batching, latency-aware frontend over the sharded scoring
//! engine.
//!
//! The engine accumulates whatever is pending (across all clients) into
//! 64-query GEMM blocks and shards each block over a persistent worker
//! crew, so heavy single-query traffic gets the same locality wins as
//! offline batch evaluation, while every answer stays bit-identical to the
//! per-query reference. Two scheduler knobs are shown: a small `linger`
//! budget (an under-filled block waits a bounded time for co-batchable
//! queries) and `split_crew` dual-direction draining (tail and head blocks
//! score concurrently on half crews whenever both are queued), with the
//! engine's own stats snapshot reporting how the scheduler did.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use kg_datagen::{preset, Preset, Scale};
use kg_models::blm::classics;
use kg_serve::KgEngine;
use kg_train::{train, TrainConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. Train a ComplEx-structured bilinear model on a synthetic graph.
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 7);
    let cfg = TrainConfig { dim: 32, epochs: 20, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("training ComplEx: d={} epochs={}", cfg.dim, cfg.epochs);
    let model = train(&classics::complex(), &ds, &cfg);
    let queries: Vec<(usize, usize, usize)> =
        ds.test.iter().map(|tr| (tr.h.idx(), tr.r.idx(), tr.t.idx())).collect();

    // 2. Spin up the serving engine: 4 shard workers, 64-query blocks, a
    //    200 µs linger budget so trickling queries still fill blocks, and
    //    split-crew draining for the mixed tail/head traffic below.
    let engine = Arc::new(
        KgEngine::builder(model, &ds)
            .threads(4)
            .block(64)
            .linger(Duration::from_micros(200))
            .split_crew(true)
            .build(),
    );
    println!(
        "engine up: {} entities, {} workers, block {}",
        engine.n_entities(),
        engine.threads(),
        engine.block()
    );

    // 3. Request-level calls — what an application would do per user query.
    let (h, r, t) = queries[0];
    println!("\nscore({h}, {r}, {t})      = {:+.4}", engine.score(h, r, t));
    println!("rank_tail({h}, {r}, {t})  = {}", engine.rank_tail(h, r, t));
    println!("rank_head({h}, {r}, {t})  = {}", engine.rank_head(h, r, t));
    println!("top_k_tails({h}, {r}, 3) = {:?}", engine.top_k_tails(h, r, 3));

    // 4. Many concurrent clients: each thread fires its own single-query
    //    requests; the engine's queue batches whatever overlaps in flight.
    let n_clients = 8;
    let start = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..n_clients {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            handles.push(scope.spawn(move || {
                let mut served = 0;
                for &(h, r, t) in queries.iter().skip(c).step_by(n_clients) {
                    // Submit both directions, then wait — tickets overlap
                    // across clients, so blocks fill up.
                    let tail = engine.submit_rank_tail(h, r, t);
                    let head = engine.submit_rank_head(h, r, t);
                    let (rt, rh) = (tail.wait(), head.wait());
                    assert!(rt >= 1.0 && rh >= 1.0);
                    served += 2;
                }
                served
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    println!(
        "\n{n_clients} clients served {total} rank queries in {:.1} ms ({:.0} queries/s)",
        secs * 1e3,
        total as f64 / secs
    );

    // 5. The scheduler's own accounting: how full the batching queue cut
    //    its blocks, how often the crew split across directions, and how
    //    well the double-buffered pipeline kept both stages busy (blocks
    //    dispatched before their predecessor was answered, vs. dispatcher
    //    and crew idle transitions).
    let stats = engine.stats();
    println!(
        "scheduler: {} served, {} blocks (mean fill {:.1}), {} split-crew blocks",
        stats.queries_served, stats.blocks_cut, stats.mean_block_fill, stats.split_blocks
    );
    println!(
        "pipeline:  {} blocks overlapped, {} lead-idle waits, {} crew-idle gaps",
        stats.blocks_overlapped, stats.lead_idle, stats.crew_idle
    );
}

//! Online serving: train a model once, then answer single link-prediction
//! requests from many concurrent clients through the [`KgEngine`] facade —
//! the query-batching, latency-aware frontend over the sharded scoring
//! engine.
//!
//! The engine accumulates whatever is pending (across all clients) into
//! 64-query GEMM blocks and shards each block over a persistent worker
//! crew, so heavy single-query traffic gets the same locality wins as
//! offline batch evaluation, while every answer stays bit-identical to the
//! per-query reference. Two scheduler knobs are shown: a small `linger`
//! budget (an under-filled block waits a bounded time for co-batchable
//! queries) and `split_crew` dual-direction draining (tail and head blocks
//! score concurrently on half crews whenever both are queued), with the
//! engine's own stats snapshot reporting how the scheduler did.
//!
//! The second half overloads a deliberately small engine to show the
//! admission controls: a bounded queue sheds at the door with
//! [`kg_serve::SubmitError::Shed`] (handled here with retry-after
//! backoff), a deadline expires stale requests before they waste crew
//! time, and the per-class latency histograms report what admitted
//! traffic actually experienced.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use kg_datagen::{preset, Preset, Scale};
use kg_models::blm::classics;
use kg_serve::{KgEngine, LatencyHistogram, RequestClass, SubmitError};
use kg_train::{train, TrainConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Render a settled-latency histogram as its headline quantiles.
fn quantiles(hist: &LatencyHistogram) -> String {
    match (hist.quantile(0.5), hist.quantile(0.99)) {
        (Some(p50), Some(p99)) => {
            format!("{} samples, p50 ≤ {p50:?}, p99 ≤ {p99:?}", hist.count())
        }
        _ => "no samples".to_string(),
    }
}

fn main() {
    // 1. Train a ComplEx-structured bilinear model on a synthetic graph.
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 7);
    let cfg = TrainConfig { dim: 32, epochs: 20, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("training ComplEx: d={} epochs={}", cfg.dim, cfg.epochs);
    let model = train(&classics::complex(), &ds, &cfg);
    let queries: Vec<(usize, usize, usize)> =
        ds.test.iter().map(|tr| (tr.h.idx(), tr.r.idx(), tr.t.idx())).collect();

    // 2. Spin up the serving engine: 4 shard workers, 64-query blocks, a
    //    200 µs linger budget so trickling queries still fill blocks, and
    //    split-crew draining for the mixed tail/head traffic below.
    let engine = Arc::new(
        KgEngine::builder(model, &ds)
            .threads(4)
            .block(64)
            .linger(Duration::from_micros(200))
            .split_crew(true)
            .build(),
    );
    println!(
        "engine up: {} entities, {} workers, block {}",
        engine.n_entities(),
        engine.threads(),
        engine.block()
    );

    // 3. Request-level calls — what an application would do per user query.
    let (h, r, t) = queries[0];
    println!("\nscore({h}, {r}, {t})      = {:+.4}", engine.score(h, r, t));
    println!("rank_tail({h}, {r}, {t})  = {}", engine.rank_tail(h, r, t));
    println!("rank_head({h}, {r}, {t})  = {}", engine.rank_head(h, r, t));
    println!("top_k_tails({h}, {r}, 3) = {:?}", engine.top_k_tails(h, r, 3));

    // 4. Many concurrent clients: each thread fires its own single-query
    //    requests; the engine's queue batches whatever overlaps in flight.
    let n_clients = 8;
    let start = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..n_clients {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            handles.push(scope.spawn(move || {
                let mut served = 0;
                for &(h, r, t) in queries.iter().skip(c).step_by(n_clients) {
                    // Submit both directions, then wait — tickets overlap
                    // across clients, so blocks fill up.
                    let tail = engine.submit_rank_tail(h, r, t).expect("admitted");
                    let head = engine.submit_rank_head(h, r, t).expect("admitted");
                    let (rt, rh) = (tail.wait(), head.wait());
                    assert!(rt >= 1.0 && rh >= 1.0);
                    served += 2;
                }
                served
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    println!(
        "\n{n_clients} clients served {total} rank queries in {:.1} ms ({:.0} queries/s)",
        secs * 1e3,
        total as f64 / secs
    );

    // 5. The scheduler's own accounting: how full the batching queue cut
    //    its blocks, how often the crew split across directions, and how
    //    well the double-buffered pipeline kept both stages busy (blocks
    //    dispatched before their predecessor was answered, vs. dispatcher
    //    and crew idle transitions).
    let stats = engine.stats();
    println!(
        "scheduler: {} served, {} blocks (mean fill {:.1}), {} split-crew blocks",
        stats.queries_served, stats.blocks_cut, stats.mean_block_fill, stats.split_blocks
    );
    println!(
        "pipeline:  {} blocks overlapped, {} lead-idle waits, {} crew-idle gaps",
        stats.blocks_overlapped, stats.lead_idle, stats.crew_idle
    );
    println!(
        "latency:   tails {} | heads {}",
        quantiles(&stats.latency_tails),
        quantiles(&stats.latency_heads)
    );

    // 6. Overload behaviour: a deliberately tiny engine — one worker,
    //    small blocks, a 32-deep tail queue, a 2 ms deadline — under a
    //    burst far past its capacity. Sheds come back on the submit call
    //    itself with a backoff hint; expiries come back through the
    //    ticket as typed errors instead of slow answers.
    let model = train(
        &classics::complex(),
        &ds,
        &TrainConfig { dim: 32, epochs: 1, lr: 0.3, l2: 1e-4, ..Default::default() },
    );
    let small = KgEngine::builder(model, &ds)
        .threads(1)
        .block(8)
        .max_queued(RequestClass::Tails, 32)
        .deadline(Duration::from_millis(2))
        .build();
    println!("\noverload: 1 worker, block 8, tail cap 32, 2 ms deadline");

    let mut tickets = Vec::new();
    let (mut sheds, mut backoff_total) = (0u64, Duration::ZERO);
    for &(h, r, t) in queries.iter().cycle().take(400) {
        // The admission loop every well-behaved client runs: on `Shed`,
        // sleep out the engine's own backlog estimate, then resubmit.
        loop {
            match small.submit_rank_tail(h, r, t) {
                Ok(ticket) => {
                    tickets.push(ticket);
                    break;
                }
                Err(SubmitError::Shed { class, depth, retry_after }) => {
                    sheds += 1;
                    backoff_total += retry_after;
                    if sheds == 1 {
                        println!(
                            "first shed: {class} queue at depth {depth}, retry in {retry_after:?}"
                        );
                    }
                    std::thread::sleep(retry_after);
                }
            }
        }
    }
    let (mut answered, mut expired) = (0u64, 0u64);
    for ticket in tickets {
        match ticket.wait_result() {
            Ok(rank) => {
                assert!(rank >= 1.0);
                answered += 1;
            }
            Err(err) if err.is_expired() => expired += 1,
            Err(err) => panic!("overload must only shed or expire, got: {err}"),
        }
    }
    let stats = small.stats();
    println!(
        "of 400 submissions: {answered} answered, {expired} expired, \
         {sheds} sheds ({backoff_total:?} total backoff)"
    );
    println!(
        "admission: shed={} expired={} served={} | tail latency {}",
        stats.queries_shed,
        stats.queries_expired,
        stats.queries_served,
        quantiles(&stats.latency_tails)
    );
    assert_eq!(stats.queries_served + stats.queries_expired, answered + expired);
}

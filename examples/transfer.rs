//! Cross-dataset transfer of searched scoring functions (the Tab. V
//! experiment in miniature): a structure searched on dataset A is trained
//! from scratch on dataset B — the paper's point is that searched SFs are
//! KG-dependent, so the diagonal should win.
//!
//! ```sh
//! cargo run --release --example transfer
//! ```

use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use kg_core::FilterIndex;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::evaluate_parallel;
use kg_models::BlockSpec;
use kg_train::{train, TrainConfig};

fn main() {
    // Two datasets with very different relation censuses.
    let sources = [Preset::Wn18rrLike, Preset::Fb15k237Like];
    let tcfg = TrainConfig { dim: 32, epochs: 12, lr: 0.3, l2: 1e-4, ..Default::default() };
    let gcfg =
        GreedyConfig { b_max: 6, n_candidates: 24, k1: 4, k2: 4, rounds: 2, ..Default::default() };

    let datasets: Vec<_> = sources.iter().map(|&p| preset(p, Scale::Tiny, 3)).collect();

    // Search a structure per dataset.
    let mut found: Vec<(String, BlockSpec)> = Vec::new();
    for ds in &datasets {
        let mut driver = SearchDriver::new(ds, tcfg, 4);
        let outcome = GreedySearch::new(gcfg).run(&mut driver);
        println!(
            "searched on {}: val MRR {:.3}, {}",
            ds.name,
            outcome.best_mrr,
            outcome.best_spec.formula()
        );
        found.push((ds.name.clone(), outcome.best_spec));
    }

    // Cross matrix: train each found structure on each dataset, test MRR.
    println!(
        "\n{:<16} {:>14} {:>14}",
        "searched-on \\ eval-on", datasets[0].name, datasets[1].name
    );
    for (src_name, spec) in &found {
        print!("{:<22}", src_name);
        for ds in &datasets {
            let model = train(spec, ds, &tcfg);
            let filter = FilterIndex::from_dataset(ds);
            let m = evaluate_parallel(&model, &ds.test, &filter, 4);
            print!(" {:>13.3}", m.mrr);
        }
        println!();
    }
    println!("\n(the diagonal — structures evaluated where they were searched — should lead)");
}

//! Triplet classification (the yes/no question-answering task of
//! Sec. V-C): train two bilinear models, tune per-relation thresholds on
//! validation, and compare test accuracy.
//!
//! ```sh
//! cargo run --release --example triplet_classification
//! ```

use kg_core::FilterIndex;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::classification::{accuracy, make_negatives, tune_thresholds};
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn main() {
    let ds = preset(Preset::Fb15k237Like, Scale::Tiny, 5);
    println!("dataset: {} (|E|={}, |R|={})", ds.name, ds.n_entities, ds.n_relations);

    // The generated dataset has no fixed negative triples; construct them
    // the way the original task did — filtered corruption.
    let filter = FilterIndex::from_dataset(&ds);
    let mut rng = SeededRng::new(99);
    let valid_neg = make_negatives(&ds.valid, &filter, ds.n_entities, &mut rng);
    let test_neg = make_negatives(&ds.test, &filter, ds.n_entities, &mut rng);

    let cfg = TrainConfig { dim: 32, epochs: 25, lr: 0.3, l2: 1e-4, ..Default::default() };
    println!("\n{:<12} {:>10}", "model", "accuracy");
    for (name, spec) in classics::all() {
        let model = train(&spec, &ds, &cfg);
        let thresholds = tune_thresholds(&model, &ds.valid, &valid_neg, ds.n_relations);
        let acc = accuracy(&model, &ds.test, &test_neg, &thresholds);
        println!("{:<12} {:>9.1}%", name, acc * 100.0);
    }
    println!(
        "\nthresholds are per-relation (σ_r), tuned on validation accuracy,\n\
         with a global fallback for relations unseen in validation."
    );
}

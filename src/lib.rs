//! Umbrella crate re-exporting the AutoSF reproduction workspace.
//!
//! The interesting code lives in the member crates:
//! [`autosf`] (the search), [`kg_models`] (scoring functions), [`kg_train`]
//! (training), [`kg_eval`] (metrics), [`kg_serve`] (the online
//! query-batching serving engine), [`kg_datagen`] (synthetic benchmarks),
//! [`kg_core`] (the KG data model) and [`kg_linalg`] (dense math).
//!
//! This crate exists to host the runnable `examples/` and the cross-crate
//! integration tests in `tests/`.

pub use autosf;
pub use kg_core;
pub use kg_datagen;
pub use kg_eval;
pub use kg_linalg;
pub use kg_models;
pub use kg_serve;
pub use kg_train;

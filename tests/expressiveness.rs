//! The semantic claims behind Tab. I / Tab. II, verified end to end on
//! generated data: which structures can model which relation patterns.

use kg_core::{Dataset, FilterIndex, Triple};
use kg_datagen::KgBuilder;
use kg_eval::ranking::evaluate_parallel;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn cfg() -> TrainConfig {
    TrainConfig { dim: 16, epochs: 15, lr: 0.3, l2: 1e-4, batch_size: 256, ..Default::default() }
}

fn metrics_of(spec: &kg_models::BlockSpec, ds: &Dataset) -> kg_eval::RankMetrics {
    let model = train(spec, ds, &cfg());
    let filter = FilterIndex::from_dataset(ds);
    evaluate_parallel(&model, &ds.test, &filter, 4)
}

fn mrr_of(spec: &kg_models::BlockSpec, ds: &Dataset) -> f64 {
    metrics_of(spec, ds).mrr
}

/// Anti-symmetric (strictly directed) relations punish DistMult exactly as
/// Tab. I predicts: because `f(h, r, t) = f(t, r, h)` for DistMult, every
/// trained edge makes its reverse score equally high, so on a directed ring
/// the true successor ties with the predecessor — Hits@1 collapses — while
/// ComplEx learns the direction.
#[test]
fn anti_symmetric_kg_punishes_distmult() {
    // two directed rings sharing entities, 20% of edges held out
    let mut train = Vec::new();
    let mut test = Vec::new();
    let n = 60u32;
    for r in 0..2u32 {
        let stride = 1 + r; // ring and double-stride ring
        for i in 0..n {
            let tr = Triple::new(i, r, (i + stride) % n);
            if (i + r) % 5 == 0 {
                test.push(tr);
            } else {
                train.push(tr);
            }
        }
    }
    let ds = Dataset::new("rings", train, vec![], test);
    let long_cfg = TrainConfig { epochs: 60, ..cfg() };
    let run = |spec: &kg_models::BlockSpec| {
        let model = kg_train::train(spec, &ds, &long_cfg);
        let filter = FilterIndex::from_dataset(&ds);
        evaluate_parallel(&model, &ds.test, &filter, 4)
    };
    let dm = run(&classics::distmult());
    let cx = run(&classics::complex());
    assert!(
        cx.hits1 > dm.hits1 + 0.1,
        "ComplEx should dominate Hits@1 on directed data: DistMult {:.3} ComplEx {:.3}",
        dm.hits1,
        cx.hits1
    );
    assert!(cx.mrr > dm.mrr, "ComplEx MRR {:.3} vs DistMult {:.3}", cx.mrr, dm.mrr);
}

/// A purely symmetric KG: DistMult's inductive bias (g(r) always
/// symmetric) is exactly right, so it must be competitive there.
#[test]
fn symmetric_kg_suits_distmult() {
    let mut b = KgBuilder::new(120, 6, 4, 22);
    for _ in 0..4 {
        b.add_symmetric(120, 1.0);
    }
    let ds = b.build(
        "symmetric-world",
        kg_core::split::SplitSpec { valid_fraction: 0.1, test_fraction: 0.1 },
    );
    let dm = mrr_of(&classics::distmult(), &ds);
    let cx = mrr_of(&classics::complex(), &ds);
    assert!(
        dm > 0.8 * cx,
        "DistMult should be competitive on symmetric data: {dm:.3} vs ComplEx {cx:.3}"
    );
    assert!(dm > 0.3, "DistMult should learn symmetric data well: {dm:.3}");
}

/// Symmetric test edges are recoverable *only* through the symmetry
/// pattern: with the mirror of a test edge in train, a symmetric-capable
/// model ranks the answer near the top.
#[test]
fn symmetry_generalises_to_held_out_mirrors() {
    // train contains (a, r, b) but not (b, r, a); test asks for the mirror
    let mut train = Vec::new();
    let mut test = Vec::new();
    for i in 0..40u32 {
        train.push(Triple::new(2 * i, 0, 2 * i + 1));
        if i % 4 == 0 {
            test.push(Triple::new(2 * i + 1, 0, 2 * i));
        } else {
            train.push(Triple::new(2 * i + 1, 0, 2 * i));
        }
    }
    let ds = Dataset::new("mirror", train, vec![], test);
    let mrr = mrr_of(&classics::distmult(), &ds);
    assert!(mrr > 0.5, "mirrored edges should be easy for DistMult: {mrr:.3}");
}

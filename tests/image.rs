//! Model-image round trip (ISSUE satellite): a trained model survives
//! serde-JSON → image writer → memory-mapped reader with bit-identical
//! embeddings and scores, malformed files are rejected with typed errors
//! on the caller's thread (no panics, no worker involvement), and a
//! mapped image serves end to end.

use kg_datagen::{preset, Preset, Scale};
use kg_models::{
    model_image_bytes, write_model_image, BlmModel, FactorScorer, ImageBlmModel, LinkPredictor,
};
use kg_serve::KgEngine;
use kg_table::{Image, ImageError};
use kg_train::{train, TrainConfig};

fn trained_model() -> (BlmModel, kg_core::Dataset) {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 61);
    let cfg = TrainConfig { dim: 16, epochs: 4, ..Default::default() };
    (train(&kg_models::blm::classics::complex(), &ds, &cfg), ds)
}

#[test]
fn serialised_model_round_trips_through_the_image_bitwise() {
    let (model, _) = trained_model();
    // Leg 1: the existing serde-JSON model serialisation.
    let text = serde_json::to_string(&model).expect("serialise model");
    let reloaded: BlmModel = serde_json::from_str(&text).expect("deserialise model");
    // Leg 2: the reloaded model through the image writer to disk, then
    // memory-mapped back.
    let path = std::env::temp_dir().join(format!("autosf-image-{}.kgt", std::process::id()));
    write_model_image(&reloaded, &path).expect("write image");
    let mapped = ImageBlmModel::open(&path).expect("map image");
    mapped.image().verify().expect("payload checksum");

    // Embeddings are bit-identical through both legs.
    assert_eq!(model.emb.ent.as_slice(), mapped.ent());
    assert_eq!(model.emb.rel.as_slice(), mapped.rel());
    assert_eq!(&model.spec, mapped.spec());

    // And so is scoring, per query and per entity row.
    let n = model.n_entities();
    let mut a = vec![0.0f32; n];
    let mut b = vec![0.0f32; n];
    for (h, r) in [(0usize, 0usize), (7, 1), (19, 2)] {
        model.score_tails(h, r, &mut a);
        mapped.score_tails(h, r, &mut b);
        assert_eq!(
            a.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        );
    }
    for e in [0usize, 11, n - 1] {
        assert_eq!(model.entity_row(e), mapped.entity_row(e));
    }

    // Leg 3: a full-copy model rebuilt from the image equals the source.
    let copied = BlmModel::from_image(mapped.image()).expect("copy out of image");
    assert_eq!(copied.emb.ent.as_slice(), model.emb.ent.as_slice());
    assert_eq!(copied.spec, model.spec);

    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_images_are_rejected_with_typed_errors() {
    let (model, _) = trained_model();
    let bytes = model_image_bytes(&model).expect("image build");

    // Corrupted magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(Image::from_bytes(&bad), Err(ImageError::BadMagic)));

    // Corrupted header (directory byte): header checksum catches it.
    let mut bad = bytes.clone();
    bad[30] ^= 0x01;
    assert!(matches!(Image::from_bytes(&bad), Err(ImageError::HeaderChecksum)));

    // Truncated file: a segment's extent no longer fits.
    let truncated = &bytes[..bytes.len() - 64];
    assert!(matches!(
        Image::from_bytes(truncated),
        Err(ImageError::Truncated { .. }) | Err(ImageError::TooSmall { .. })
    ));

    // Flipped payload byte: open succeeds (header-only validation, the
    // zero-copy contract), the opt-in full verify catches it.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x40;
    let img = Image::from_bytes(&bad).expect("header still valid");
    assert!(matches!(img.verify(), Err(ImageError::PayloadChecksum)));

    // A structurally valid image that is not a model: schema error from
    // the model reader, not a panic.
    let empty = kg_table::ImageWriter::new().to_bytes();
    let img = Image::from_bytes(&empty).expect("valid container");
    assert!(matches!(ImageBlmModel::new(img), Err(ImageError::MissingSegment { .. })));
}

#[test]
fn mapped_image_serves_end_to_end() {
    let (model, ds) = trained_model();
    let path = std::env::temp_dir().join(format!("autosf-image-serve-{}.kgt", std::process::id()));
    write_model_image(&model, &path).expect("write image");
    let mapped = ImageBlmModel::open(&path).expect("map image");

    let direct = KgEngine::builder(model, &ds).threads(2).build();
    let served = KgEngine::builder(mapped, &ds).threads(2).build();
    for t in ds.test.iter().take(8) {
        let (h, r, tt) = (t.h.idx(), t.r.idx(), t.t.idx());
        assert_eq!(direct.rank_tail(h, r, tt).to_bits(), served.rank_tail(h, r, tt).to_bits());
        assert_eq!(direct.top_k_tails(h, r, 3), served.top_k_tails(h, r, 3));
    }
    std::fs::remove_file(&path).ok();
}

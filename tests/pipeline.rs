//! Cross-crate integration: dataset generation → training → evaluation →
//! classification, plus determinism end to end.

use kg_core::{DatasetStats, FilterIndex};
use kg_datagen::{preset, Preset, Scale};
use kg_eval::classification::{accuracy, make_negatives, tune_thresholds};
use kg_eval::ranking::evaluate_parallel;
use kg_linalg::SeededRng;
use kg_models::blm::classics;
use kg_train::{train, TrainConfig};

fn quick_cfg() -> TrainConfig {
    TrainConfig { dim: 16, epochs: 12, lr: 0.3, l2: 1e-4, batch_size: 256, ..Default::default() }
}

#[test]
fn full_pipeline_beats_random_ranking() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 11);
    let model = train(&classics::simple(), &ds, &quick_cfg());
    let filter = FilterIndex::from_dataset(&ds);
    let m = evaluate_parallel(&model, &ds.test, &filter, 4);
    // random ranking gives MRR ≈ Σ 1/r / n ≈ ln(n)/n ≈ 0.03 at 250 entities
    assert!(m.mrr > 0.10, "trained MRR {:.3} barely above random", m.mrr);
    assert!(m.hits10 > 0.15, "hits@10 {:.3}", m.hits10);
}

#[test]
fn classification_pipeline_beats_coin_flip() {
    let ds = preset(Preset::Fb15k237Like, Scale::Tiny, 12);
    // Classification needs a better-converged model than the ranking smoke
    // tests; 12 epochs leaves it near chance on marginal RNG streams.
    let model =
        train(&classics::complex(), &ds, &TrainConfig { epochs: 40, dim: 32, ..quick_cfg() });
    let filter = FilterIndex::from_dataset(&ds);
    let mut rng = SeededRng::new(1);
    let valid_neg = make_negatives(&ds.valid, &filter, ds.n_entities, &mut rng);
    let test_neg = make_negatives(&ds.test, &filter, ds.n_entities, &mut rng);
    let th = tune_thresholds(&model, &ds.valid, &valid_neg, ds.n_relations);
    let acc = accuracy(&model, &ds.test, &test_neg, &th);
    assert!(acc > 0.6, "accuracy {acc:.3} too close to chance");
}

#[test]
fn everything_is_deterministic_end_to_end() {
    let run = || {
        let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 13);
        let model = train(&classics::distmult(), &ds, &quick_cfg());
        let filter = FilterIndex::from_dataset(&ds);
        evaluate_parallel(&model, &ds.test, &filter, 3).mrr
    };
    assert_eq!(run(), run());
}

#[test]
fn census_stays_stable_across_scales() {
    for scale in [Scale::Tiny, Scale::Quick] {
        let s = DatasetStats::of(&preset(Preset::Wn18Like, scale, 5));
        assert_eq!(
            (s.n_symmetric, s.n_anti_symmetric, s.n_inverse, s.n_general),
            (4, 7, 7, 0),
            "census broke at {scale:?}"
        );
    }
}

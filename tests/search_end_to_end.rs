//! End-to-end AutoSF search: the discovered structure must be valid,
//! expressive where the data demands it, and at least as good as the f4
//! seeds it grew from.

use autosf::filter::satisfies_c2;
use autosf::{GreedyConfig, GreedySearch, SearchDriver};
use kg_datagen::{preset, Preset, Scale};
use kg_train::TrainConfig;

fn tcfg() -> TrainConfig {
    TrainConfig { dim: 16, epochs: 8, lr: 0.3, l2: 1e-4, batch_size: 256, ..Default::default() }
}

#[test]
fn search_output_is_valid_and_competitive() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 31);
    let mut driver = SearchDriver::new(&ds, tcfg(), 4);
    let gcfg =
        GreedyConfig { b_max: 6, n_candidates: 16, k1: 4, k2: 4, rounds: 2, ..Default::default() };
    let outcome = GreedySearch::new(gcfg).run(&mut driver);

    assert!(satisfies_c2(&outcome.best_spec), "search returned a C2-violating structure");
    assert!(outcome.best_mrr > 0.0 && outcome.best_mrr <= 1.0);

    // the best must be ≥ the mean of the f4 tier it grew from
    let f4_mean: f64 = driver.trace.records.iter().take(5).map(|r| r.mrr).sum::<f64>() / 5.0;
    assert!(
        outcome.best_mrr >= f4_mean,
        "best {:.3} below f4 mean {:.3}",
        outcome.best_mrr,
        f4_mean
    );
}

#[test]
fn search_trace_is_monotone_in_model_index() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 32);
    let mut driver = SearchDriver::new(&ds, tcfg(), 4);
    let gcfg =
        GreedyConfig { b_max: 6, n_candidates: 12, k1: 4, k2: 3, rounds: 1, ..Default::default() };
    GreedySearch::new(gcfg).run(&mut driver);
    let idx: Vec<usize> = driver.trace.records.iter().map(|r| r.model_index).collect();
    for w in idx.windows(2) {
        assert!(w[1] == w[0] + 1, "model indices must be consecutive: {idx:?}");
    }
}

#[test]
fn searches_with_different_seeds_can_differ_but_both_work() {
    let ds = preset(Preset::Fb15k237Like, Scale::Tiny, 33);
    let run = |seed: u64| {
        let mut driver = SearchDriver::new(&ds, tcfg(), 4);
        let gcfg = GreedyConfig {
            b_max: 6,
            n_candidates: 12,
            k1: 4,
            k2: 3,
            rounds: 1,
            seed,
            ..Default::default()
        };
        GreedySearch::new(gcfg).run(&mut driver).best_mrr
    };
    let a = run(1);
    let b = run(2);
    assert!(a > 0.0 && b > 0.0);
}

//! Serialisation round-trips: datasets, structures and trained models
//! survive JSON, and a reloaded model scores identically.

use kg_core::Dataset;
use kg_datagen::{preset, Preset, Scale};
use kg_models::{BlmModel, BlockSpec, LinkPredictor};
use kg_train::{train, TrainConfig};

#[test]
fn dataset_roundtrips_through_json() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 51);
    let text = serde_json::to_string(&ds).expect("serialise dataset");
    let back: Dataset = serde_json::from_str(&text).expect("deserialise dataset");
    assert_eq!(back.train, ds.train);
    assert_eq!(back.valid, ds.valid);
    assert_eq!(back.test, ds.test);
    assert_eq!(back.n_entities, ds.n_entities);
}

#[test]
fn blockspec_roundtrips_through_json() {
    for (_, spec) in kg_models::blm::classics::all() {
        let text = serde_json::to_string(&spec).expect("serialise spec");
        let back: BlockSpec = serde_json::from_str(&text).expect("deserialise spec");
        assert_eq!(back, spec);
    }
}

#[test]
fn trained_model_roundtrips_and_scores_identically() {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 52);
    let cfg = TrainConfig { dim: 16, epochs: 5, ..Default::default() };
    let model = train(&kg_models::blm::classics::simple(), &ds, &cfg);
    let text = serde_json::to_string(&model).expect("serialise model");
    let back: BlmModel = serde_json::from_str(&text).expect("deserialise model");
    let mut a = vec![0.0f32; model.n_entities()];
    let mut b = vec![0.0f32; model.n_entities()];
    model.score_tails(3, 0, &mut a);
    back.score_tails(3, 0, &mut b);
    assert_eq!(a, b);
    assert_eq!(model.score_triple(1, 0, 2), back.score_triple(1, 0, 2));
}

#[test]
fn dataset_tsv_roundtrip_preserves_structure() {
    let ds = preset(Preset::Fb15k237Like, Scale::Tiny, 53);
    let dir = std::env::temp_dir().join(format!("autosf-tsv-{}", std::process::id()));
    kg_core::io::save_dir(&ds, &dir, None).expect("save");
    let (back, _) = kg_core::io::load_dir(&dir, "reload").expect("load");
    // names re-map ids, so compare sizes and the relation census instead
    assert_eq!(back.train.len(), ds.train.len());
    assert_eq!(back.test.len(), ds.test.len());
    assert_eq!(back.n_relations, ds.n_relations);
    assert_eq!(back.n_entities, ds.n_entities);
    let a = kg_core::DatasetStats::of(&ds);
    let b = kg_core::DatasetStats::of(&back);
    assert_eq!(a.n_symmetric, b.n_symmetric);
    assert_eq!(a.n_inverse, b.n_inverse);
    std::fs::remove_dir_all(&dir).ok();
}

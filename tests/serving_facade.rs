//! Cross-crate integration for the serving facade: a model trained by
//! `kg-train` on a `kg-datagen` graph, served by `kg-serve`, must answer
//! request-level queries **bit-identically** to the offline evaluation
//! stack — the whole point of routing both through one shard/block engine.

use kg_core::FilterIndex;
use kg_datagen::{preset, Preset, Scale};
use kg_eval::ranking::{evaluate_parallel_with, filtered_rank, top_k, RankMetrics};
use kg_models::blm::classics;
use kg_models::{KernelPolicy, LinkPredictor};
use kg_serve::KgEngine;
use kg_train::{train, TrainConfig};
use std::sync::Arc;

fn trained() -> (kg_models::BlmModel, kg_core::Dataset) {
    let ds = preset(Preset::Wn18rrLike, Scale::Tiny, 31);
    let cfg = TrainConfig {
        dim: 16,
        epochs: 12,
        lr: 0.3,
        l2: 1e-4,
        batch_size: 256,
        ..Default::default()
    };
    (train(&classics::simple(), &ds, &cfg), ds)
}

#[test]
fn served_ranks_reproduce_offline_evaluation_bit_for_bit() {
    let (model, ds) = trained();
    let filter = FilterIndex::from_dataset(&ds);
    // Both sides pinned to Exact: this suite asserts bit-identity between
    // the served and offline stacks, which only the exact tier promises
    // across different shard layouts — a fast-tier CI environment must
    // not flip either side from outside.
    let offline = evaluate_parallel_with(KernelPolicy::Exact, &model, &ds.test, &filter, 4);

    let model = Arc::new(model);
    // Run the whole thing under both dispatcher regimes — strictly
    // serialised and latency-aware (linger + split-crew): the mixed
    // tail/head submission below engages dual-direction draining, and
    // neither regime may move a single bit of the folded metrics.
    for (linger_us, split) in [(0u64, false), (150, true)] {
        let engine = KgEngine::builder(Arc::clone(&model), &ds)
            .threads(4)
            .block(64)
            .linger(std::time::Duration::from_micros(linger_us))
            .split_crew(split)
            .policy(KernelPolicy::Exact)
            .build();

        // Submit every test query up front (the batching queue groups them
        // into blocks), then fold the answered ranks exactly the way the
        // offline evaluator folds its own — same order, same f64
        // operations.
        let tickets: Vec<_> = ds
            .test
            .iter()
            .map(|tr| {
                (
                    engine.submit_rank_tail(tr.h.idx(), tr.r.idx(), tr.t.idx()).expect("admitted"),
                    engine.submit_rank_head(tr.h.idx(), tr.r.idx(), tr.t.idx()).expect("admitted"),
                )
            })
            .collect();
        let mut served = RankMetrics::zero();
        for (tail, head) in tickets {
            served.accumulate(tail.wait());
            served.accumulate(head.wait());
        }
        assert_eq!(
            served.normalised(),
            offline,
            "served metrics diverged from offline evaluation (linger={linger_us}µs, \
             split_crew={split})"
        );
        // The scheduler accounted for every query and left nothing queued.
        let stats = engine.stats();
        assert_eq!(stats.queries_served, 2 * ds.test.len() as u64);
        assert_eq!(stats.queries_failed, 0);
        assert_eq!(stats.depth_tails + stats.depth_heads + stats.depth_score, 0);
    }
}

#[test]
fn served_answers_match_per_query_reference_on_a_trained_model() {
    let (model, ds) = trained();
    let filter = FilterIndex::from_dataset(&ds);
    let model = Arc::new(model);
    // Pinned to Exact: the per-query `LinkPredictor` reference below never
    // touches the fast kernels, so only the exact tier can match it bitwise.
    let engine = KgEngine::builder(Arc::clone(&model), &ds)
        .threads(3)
        .block(16)
        .policy(KernelPolicy::Exact)
        .build();

    let mut row = vec![0.0f32; model.n_entities()];
    for tr in ds.test.iter().take(20) {
        let (h, r, t) = (tr.h.idx(), tr.r.idx(), tr.t.idx());
        assert_eq!(engine.score(h, r, t), model.score_triple(h, r, t));

        model.score_tails(h, r, &mut row);
        assert_eq!(engine.rank_tail(h, r, t), filtered_rank(&row, t, filter.tails(tr.h, tr.r)));
        assert_eq!(engine.top_k_tails(h, r, 10), top_k(&row, 10));

        model.score_heads(r, t, &mut row);
        assert_eq!(engine.rank_head(h, r, t), filtered_rank(&row, h, filter.heads(tr.r, tr.t)));
        assert_eq!(engine.top_k_heads(r, t, 10), top_k(&row, 10));
    }
}
